"""Table 3 — the headline: 4 cases × 3 modes × 3 loads.

For every (case, load) cell, the three notification modes replay identical
traffic on a fresh device; we report average latency, P99 latency, and
throughput, and apply the paper's ✓/✗ effectiveness marking (✗ when
processing time exceeds the best by >50% or throughput trails by >20%,
in multiple cells).

Expected shape (paper):
- Case 1: exclusive ✗ (dispatch overhead + LIFO concentration).
- Case 2: Hermes > exclusive > reuseport (busy/hung-worker avoidance).
- Case 3: exclusive ✗ (long-lived connection concentration).
- Case 4: reuseport ✗ (stateless hashing onto overloaded workers);
  Hermes ≈ exclusive, Hermes slightly behind at heavy (closed-loop lag).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.reporting import mark_effectiveness, render_table
from ..lb.server import NotificationMode
from .common import MODES_UNDER_TEST, CellResult, run_case_cell
from .registry import CellSpec, ExperimentSpec, deprecated, get, register

__all__ = ["Table3Result", "run_table3", "render_table3", "TABLE3_PORTS",
           "CASE_ORDER", "LOAD_ORDER", "table3_result_from_doc"]

#: Multi-tenant port plan: 200 tenant ports, exposing exclusive's
#: O(#ports) dispatch cost.
TABLE3_PORTS: Tuple[int, ...] = tuple(range(20001, 20201))

CASE_ORDER = ("case1", "case2", "case3", "case4")
LOAD_ORDER = ("light", "medium", "heavy")

#: Simulated seconds of traffic generation per cell.  High-rate cases use
#: shorter windows to bound wall-clock cost without losing the shape.
_DURATIONS = {"case1": 2.5, "case2": 4.0, "case3": 3.0, "case4": 6.0}


@dataclass
class Table3Result:
    """All cells: (case, load, mode) -> CellResult, plus ✓/✗ marks."""

    cells: Dict[Tuple[str, str, str], CellResult]
    marks: Dict[Tuple[str, str, str], str]

    def cell(self, case: str, load: str, mode: str) -> CellResult:
        return self.cells[(case, load, mode)]

    def mode_mark(self, case: str, mode: str) -> str:
        """The paper's per-case verdict: ✗ if a mode is marked bad in any
        load, or never performs best."""
        bad = sum(1 for (c, _load, m), mark in self.marks.items()
                  if c == case and m == mode and mark == "x")
        return "x" if bad >= 1 else "ok"

    def loads_present(self) -> Tuple[str, ...]:
        present = {load for (_case, load, _mode) in self.cells}
        return tuple(load for load in LOAD_ORDER if load in present)


def _table3_cells(seed: int, overrides: Dict) -> Tuple[CellSpec, ...]:
    """Enumerate the grid: case × load × mode, one cell each.

    All cells share the base seed — ``run_spec`` derives the traffic
    stream from the workload name, so every mode of one (case, load)
    replays byte-identical traffic (the A/B discipline Table 3 needs).
    """
    cases = tuple(overrides.get("cases", CASE_ORDER))
    loads = tuple(overrides.get("loads", LOAD_ORDER))
    modes = tuple(overrides.get("modes",
                                [m.value for m in MODES_UNDER_TEST]))
    durations = dict(_DURATIONS)
    durations.update(overrides.get("durations", {}))
    scale = overrides.get("duration_scale", 1.0)
    base = {"n_workers": overrides.get("n_workers", 8),
            "ports": list(overrides.get("ports", TABLE3_PORTS)),
            "settle": overrides.get("settle", 1.5)}
    return tuple(
        CellSpec("table3", f"{case}/{load}/{mode}",
                 dict(base, case=case, load=load, mode=mode,
                      duration=durations.get(case, 3.0) * scale),
                 seed)
        for case in cases for load in loads for mode in modes)


def _table3_run_cell(cell: CellSpec) -> Dict:
    p = cell.params
    result = run_case_cell(
        NotificationMode(p["mode"]), p["case"], p["load"],
        n_workers=p["n_workers"], duration=p["duration"],
        ports=tuple(p["ports"]), seed=cell.seed, settle=p["settle"])
    return result.to_doc()


def _table3_merge(cells: Sequence[CellSpec],
                  docs: Sequence[Dict]) -> Dict:
    """Effectiveness marks need all modes of a (case, load) together, so
    marking happens here rather than per cell."""
    cell_map: Dict[str, Dict] = {}
    grouped: Dict[Tuple[str, str], Dict[str, Dict]] = {}
    for cell, doc in zip(cells, docs):
        case, load, mode = cell.key.split("/")
        cell_map[cell.key] = doc
        grouped.setdefault((case, load), {})[mode] = doc
    marks: Dict[str, str] = {}
    for (case, load), by_mode in grouped.items():
        cell_marks = mark_effectiveness({
            mode: {"avg": d["avg_ms"], "p99": d["p99_ms"],
                   "thr": d["throughput_rps"]}
            for mode, d in by_mode.items()})
        for mode, mark in cell_marks.items():
            marks[f"{case}/{load}/{mode}"] = mark
    return {"cells": cell_map, "marks": marks}


def table3_result_from_doc(merged: Dict) -> Table3Result:
    """Rebuild the legacy result object from a merged sweep document."""
    cells = {tuple(key.split("/")): CellResult.from_doc(doc)
             for key, doc in merged["cells"].items()}
    marks = {tuple(key.split("/")): mark
             for key, mark in merged["marks"].items()}
    return Table3Result(cells=cells, marks=marks)


register(ExperimentSpec(
    name="table3", title="Headline grid: case x mode x load",
    cells=_table3_cells, run_cell=_table3_run_cell, merge=_table3_merge,
    render=lambda merged: render_table3(table3_result_from_doc(merged)),
    default_seed=11))


def _run_table3(cases: Sequence[str] = CASE_ORDER,
                loads: Sequence[str] = LOAD_ORDER,
                n_workers: int = 8, seed: int = 11,
                ports: Sequence[int] = TABLE3_PORTS,
                durations: Optional[Dict[str, float]] = None,
                settle: float = 1.5) -> Table3Result:
    """Run the grid serially through the registry.  ~3-4 minutes at the
    default scale; ``repro sweep table3 --jobs N`` runs the same cells in
    parallel with byte-identical output."""
    overrides: Dict = {"cases": list(cases), "loads": list(loads),
                       "n_workers": n_workers, "ports": list(ports),
                       "settle": settle}
    if durations:
        overrides["durations"] = dict(durations)
    merged = get("table3").run(seed=seed, overrides=overrides)
    return table3_result_from_doc(merged)


run_table3 = deprecated(_run_table3, "repro.sweep.run_sweep('table3')")


def render_table3(result: Table3Result) -> str:
    """Paper-layout rows: one row per (case, mode), three numeric cells
    per load present in the result."""
    loads = result.loads_present() or LOAD_ORDER
    headers = ["Case", "Mode"]
    for load in loads:
        initial = load[0].upper()
        headers.extend([f"{initial}.avg(ms)", f"{initial}.p99",
                        f"{initial}.thr(k)"])
    headers.append("verdict")
    rows: List[List] = []
    mode_names = [m.value for m in MODES_UNDER_TEST]
    for case in CASE_ORDER:
        if not any(key[0] == case for key in result.cells):
            continue
        for mode in mode_names:
            if (case, loads[0], mode) not in result.cells:
                continue
            row: List = [case, mode]
            for load in loads:
                cell = result.cells[(case, load, mode)]
                mark = result.marks[(case, load, mode)]
                suffix = " (x)" if mark == "x" else ""
                row.extend([f"{cell.avg_ms:.2f}{suffix}",
                            f"{cell.p99_ms:.2f}",
                            f"{cell.throughput_rps / 1e3:.2f}"])
            row.append(result.mode_mark(case, mode))
            rows.append(row)
    return render_table(headers, rows,
                        title="Table 3: case x mode x load "
                              "(avg/P99 latency, throughput)")


if __name__ == "__main__":  # pragma: no cover - manual harness
    print(render_table3(_run_table3()))
