"""Table 3 — the headline: 4 cases × 3 modes × 3 loads.

For every (case, load) cell, the three notification modes replay identical
traffic on a fresh device; we report average latency, P99 latency, and
throughput, and apply the paper's ✓/✗ effectiveness marking (✗ when
processing time exceeds the best by >50% or throughput trails by >20%,
in multiple cells).

Expected shape (paper):
- Case 1: exclusive ✗ (dispatch overhead + LIFO concentration).
- Case 2: Hermes > exclusive > reuseport (busy/hung-worker avoidance).
- Case 3: exclusive ✗ (long-lived connection concentration).
- Case 4: reuseport ✗ (stateless hashing onto overloaded workers);
  Hermes ≈ exclusive, Hermes slightly behind at heavy (closed-loop lag).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.reporting import mark_effectiveness, render_table
from .common import MODES_UNDER_TEST, CellResult, compare_modes

__all__ = ["Table3Result", "run_table3", "render_table3", "TABLE3_PORTS",
           "CASE_ORDER", "LOAD_ORDER"]

#: Multi-tenant port plan: 200 tenant ports, exposing exclusive's
#: O(#ports) dispatch cost.
TABLE3_PORTS: Tuple[int, ...] = tuple(range(20001, 20201))

CASE_ORDER = ("case1", "case2", "case3", "case4")
LOAD_ORDER = ("light", "medium", "heavy")

#: Simulated seconds of traffic generation per cell.  High-rate cases use
#: shorter windows to bound wall-clock cost without losing the shape.
_DURATIONS = {"case1": 2.5, "case2": 4.0, "case3": 3.0, "case4": 6.0}


@dataclass
class Table3Result:
    """All cells: (case, load, mode) -> CellResult, plus ✓/✗ marks."""

    cells: Dict[Tuple[str, str, str], CellResult]
    marks: Dict[Tuple[str, str, str], str]

    def cell(self, case: str, load: str, mode: str) -> CellResult:
        return self.cells[(case, load, mode)]

    def mode_mark(self, case: str, mode: str) -> str:
        """The paper's per-case verdict: ✗ if a mode is marked bad in any
        load, or never performs best."""
        bad = sum(1 for load in LOAD_ORDER
                  if self.marks[(case, load, mode)] == "x")
        return "x" if bad >= 1 else "ok"


def run_table3(cases: Sequence[str] = CASE_ORDER,
               loads: Sequence[str] = LOAD_ORDER,
               n_workers: int = 8, seed: int = 11,
               ports: Sequence[int] = TABLE3_PORTS,
               durations: Optional[Dict[str, float]] = None,
               settle: float = 1.5) -> Table3Result:
    """Run the grid.  ~3-4 minutes at the default scale."""
    durations = durations or _DURATIONS
    cells: Dict[Tuple[str, str, str], CellResult] = {}
    marks: Dict[Tuple[str, str, str], str] = {}
    for case in cases:
        for load in loads:
            results = compare_modes(
                case, load, n_workers=n_workers,
                duration=durations.get(case, 3.0), ports=ports, seed=seed,
                settle=settle)
            for mode, result in results.items():
                cells[(case, load, mode)] = result
            cell_marks = mark_effectiveness({
                mode: {"avg": r.avg_ms, "p99": r.p99_ms,
                       "thr": r.throughput_rps}
                for mode, r in results.items()})
            for mode, mark in cell_marks.items():
                marks[(case, load, mode)] = mark
    return Table3Result(cells=cells, marks=marks)


def render_table3(result: Table3Result) -> str:
    """Paper-layout rows: one row per (case, mode) with 9 numeric cells."""
    headers = ["Case", "Mode",
               "L.avg(ms)", "L.p99", "L.thr(k)",
               "M.avg(ms)", "M.p99", "M.thr(k)",
               "H.avg(ms)", "H.p99", "H.thr(k)", "verdict"]
    rows: List[List] = []
    mode_names = [m.value for m in MODES_UNDER_TEST]
    for case in CASE_ORDER:
        if (case, "light", mode_names[0]) not in result.cells:
            continue
        for mode in mode_names:
            row: List = [case, mode]
            for load in LOAD_ORDER:
                cell = result.cells[(case, load, mode)]
                mark = result.marks[(case, load, mode)]
                suffix = " (x)" if mark == "x" else ""
                row.extend([f"{cell.avg_ms:.2f}{suffix}",
                            f"{cell.p99_ms:.2f}",
                            f"{cell.throughput_rps / 1e3:.2f}"])
            row.append(result.mode_mark(case, mode))
            rows.append(row)
    return render_table(headers, rows,
                        title="Table 3: case x mode x load "
                              "(avg/P99 latency, throughput)")


if __name__ == "__main__":  # pragma: no cover - manual harness
    print(render_table3(run_table3()))
