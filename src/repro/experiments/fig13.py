"""Fig. 13 — SD of per-worker CPU utilization and #connections, 3 modes.

The paper samples production devices over two days: the SDs of CPU
utilization are 26% / 2.7% / 2.7% for exclusive / reuseport / Hermes, and
the SDs of connection counts are 3200 / 50 / 20.  Reuseport's hashing is
balanced for *new* connections, but varying connection lifetimes leave its
steady-state counts less even than Hermes, which actively prefers
low-connection workers.

We run all three modes on identical long-lived-connection traffic with
heterogeneous lifetimes and sample per-worker CPU and connection counts
periodically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..analysis.stats import mean, population_sd
from ..lb.server import LBServer, NotificationMode
from ..sim.engine import Environment
from ..sim.monitor import PeriodicSampler
from ..sim.rng import RngRegistry
from ..workloads.cases import build_case_workload
from ..workloads.generator import TrafficGenerator
from .common import MODES_UNDER_TEST
from .registry import CellSpec, ExperimentSpec, deprecated, register

__all__ = ["LoadBalanceResult", "run_fig13"]


@dataclass
class LoadBalanceResult:
    #: mode -> average SD of per-worker CPU utilization across samples.
    cpu_sd: Dict[str, float]
    #: mode -> average SD of per-worker connection counts across samples.
    conn_sd: Dict[str, float]
    #: mode -> (time, cpu SD) series.
    cpu_sd_series: Dict[str, List[Tuple[float, float]]]
    #: mode -> (time, conn SD) series.
    conn_sd_series: Dict[str, List[Tuple[float, float]]]


def _run_mode(mode: NotificationMode, n_workers: int, duration: float,
              seed: int) -> Tuple[List[Tuple[float, float]],
                                  List[Tuple[float, float]]]:
    env = Environment()
    registry = RngRegistry(seed)
    server = LBServer(env, n_workers=n_workers, ports=[443], mode=mode,
                      hash_seed=registry.stream("hash").randrange(2 ** 32))
    server.start()
    spec = build_case_workload("case3", "medium", n_workers=n_workers,
                               duration=duration, ports=(443,))
    # Mix in heterogeneous request counts so connection lifetimes vary —
    # what makes reuseport's steady-state counts drift apart.
    gen = TrafficGenerator(env, server, registry.stream("traffic"), spec)
    gen.start()

    cpu_series: List[Tuple[float, float]] = []
    conn_series: List[Tuple[float, float]] = []
    window_start = [0.0]
    busy_at_start = [[0.0] * n_workers]

    def sample():
        now = env.now
        window = now - window_start[0]
        if window <= 0:
            return 0.0
        utils = []
        for i, worker in enumerate(server.workers):
            busy = worker.metrics.cpu.busy_time()
            utils.append((busy - busy_at_start[0][i]) / window)
            busy_at_start[0][i] = busy
        window_start[0] = now
        cpu_series.append((now, population_sd(utils)))
        conn_series.append(
            (now, population_sd([float(len(w.conns))
                                 for w in server.workers])))
        return 0.0

    PeriodicSampler(env, duration / 40, sample, name="fig13")
    env.run(until=duration + 0.5)
    return cpu_series, conn_series


def _run_fig13(n_workers: int = 8, duration: float = 8.0,
               seed: int = 47) -> LoadBalanceResult:
    cpu_sd, conn_sd = {}, {}
    cpu_series, conn_series = {}, {}
    for mode in MODES_UNDER_TEST:
        cpu, conns = _run_mode(mode, n_workers, duration, seed)
        # Skip the warm-up third of the run.
        skip = len(cpu) // 3
        cpu_sd[mode.value] = mean([v for _, v in cpu[skip:]])
        conn_sd[mode.value] = mean([v for _, v in conns[skip:]])
        cpu_series[mode.value] = cpu
        conn_series[mode.value] = conns
    return LoadBalanceResult(cpu_sd=cpu_sd, conn_sd=conn_sd,
                             cpu_sd_series=cpu_series,
                             conn_sd_series=conn_series)


def _cells(seed, overrides):
    params = {"n_workers": overrides.get("n_workers", 8),
              "duration": overrides.get("duration", 8.0)}
    return tuple(
        CellSpec("fig13", mode.value, dict(params, mode=mode.value), seed)
        for mode in MODES_UNDER_TEST)


def _run_cell(cell):
    p = cell.params
    cpu, conns = _run_mode(NotificationMode(p["mode"]), p["n_workers"],
                           p["duration"], cell.seed)
    return {"cpu_series": cpu, "conn_series": conns}


def _merge(cells, docs):
    cpu_sd, conn_sd = {}, {}
    lines = []
    for cell, doc in zip(cells, docs):
        cpu = doc["cpu_series"]
        conns = doc["conn_series"]
        skip = len(cpu) // 3
        cpu_sd[cell.key] = mean([v for _, v in cpu[skip:]])
        conn_sd[cell.key] = mean([v for _, v in conns[skip:]])
        lines.append(f"{cell.key:12s} cpu SD {cpu_sd[cell.key] * 100:6.2f}%"
                     f"   conn SD {conn_sd[cell.key]:8.2f}")
    return {"cpu_sd": cpu_sd, "conn_sd": conn_sd,
            "cells": {cell.key: doc for cell, doc in zip(cells, docs)},
            "rendered": "\n".join(lines)}


register(ExperimentSpec(
    name="fig13", title="Per-worker CPU/connection SD across modes",
    cells=_cells, run_cell=_run_cell, merge=_merge,
    render=lambda merged: merged["rendered"], default_seed=47))

run_fig13 = deprecated(_run_fig13, "registry.get('fig13').run()")


if __name__ == "__main__":  # pragma: no cover - manual harness
    result = _run_fig13()
    for mode in result.cpu_sd:
        print(f"{mode:12s} cpu SD {result.cpu_sd[mode] * 100:6.2f}%   "
              f"conn SD {result.conn_sd[mode]:8.2f}")
