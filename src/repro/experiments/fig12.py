"""Fig. 12 — normalized unit cost of cloud infra before/after Hermes.

Eliminating hung workers let the safety threshold rise from 30% to 40%
CPU, so the same traffic needs fewer VMs.  Unit cost (= total infra cost /
total traffic, normalized) falls month by month as the fleet converts,
with a peak reduction of 18.9%.

Traffic grows over the year (the paper cannot show absolute cost reduction
because traffic kept rising — unit cost is the honest metric).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..analysis.stats import normalize
from ..cluster.autoscale import AutoscaleModel, unit_cost_series
from .registry import deprecated, simple_experiment

__all__ = ["UnitCostResult", "run_fig12"]


@dataclass
class UnitCostResult:
    #: (month, normalized unit cost).
    series: List[Tuple[int, float]]
    peak_reduction: float
    devices_before: int
    devices_after: int


def _run_fig12(months: int = 12, rollout_start: int = 2,
              rollout_months: int = 6,
              monthly_traffic_growth: float = 0.04,
              base_traffic: float = 1000.0,
              fixed_share: float = 0.25) -> UnitCostResult:
    model = AutoscaleModel(fixed_share=fixed_share)
    traffic = [base_traffic * (1 + monthly_traffic_growth) ** m
               for m in range(months)]
    fractions = []
    for m in range(months):
        if m < rollout_start:
            fractions.append(0.0)
        else:
            fractions.append(min(1.0, (m - rollout_start + 1)
                                 / rollout_months))
    points = unit_cost_series(model, traffic, fractions)
    normalized = normalize([p.unit_cost for p in points])
    series = [(p.month, u) for p, u in zip(points, normalized)]
    peak_reduction = 1.0 - min(normalized)
    return UnitCostResult(
        series=series,
        peak_reduction=peak_reduction,
        devices_before=points[0].devices,
        devices_after=points[-1].devices,
    )


def _rendered(result: UnitCostResult) -> str:
    lines = [f"month {month:2d}: unit cost {cost:.3f}"
             for month, cost in result.series]
    lines.append(f"peak reduction: {result.peak_reduction * 100:.1f}% "
                 f"(paper: 18.9%)")
    return "\n".join(lines)


def _runner(seed: int, params: dict) -> dict:
    from dataclasses import asdict
    result = _run_fig12(
        months=params.get("months", 12),
        rollout_start=params.get("rollout_start", 2),
        rollout_months=params.get("rollout_months", 6))
    return dict(asdict(result), rendered=_rendered(result))


simple_experiment("fig12", "Normalized unit cost of the fleet (analytic)",
                  _runner, default_seed=0)

run_fig12 = deprecated(_run_fig12, "registry.get('fig12').run()")


if __name__ == "__main__":  # pragma: no cover - manual harness
    print(_rendered(_run_fig12()))
