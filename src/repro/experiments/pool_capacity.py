"""§5.1.1 — connection-pool exhaustion under uneven distribution.

"Workers typically manage connections using preallocated memory pools of
fixed capacity.  When connections are unevenly distributed among workers,
overall system capacity can degrade significantly.  In the past, we
observed cases where some workers exhausted their connection pool
resources and were unable to accept new connections, despite low CPU
utilization."

With per-worker pools of size P and n workers, ideal device capacity is
n×P concurrent connections.  Exclusive's concentration exhausts one
worker's pool long before the device is full; Hermes's conn-count filter
steers around full workers, so the usable capacity approaches n×P.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..kernel.hash import FourTuple
from ..kernel.tcp import Connection
from ..lb.server import LBServer, NotificationMode
from ..lb.worker import ServiceProfile
from ..sim.engine import Environment
from ..sim.rng import RngRegistry
from .registry import CellSpec, deprecated, lined_experiment

__all__ = ["PoolCapacityResult", "run_pool_capacity"]


@dataclass(frozen=True)
class PoolCapacityResult:
    mode: str
    pool_size: int
    n_workers: int
    offered: int
    established: int
    #: Connections stranded unaccepted on a full worker's queue while
    #: other workers still had pool room — the §5.1.1 degradation.
    stranded: int
    refused_pool_exhausted: int
    #: Established / (n_workers × pool_size): usable capacity fraction.
    capacity_utilization: float
    #: Pool slots still free at the end (spare capacity that imbalanced
    #: dispatch could not reach).
    spare_slots: int


def _run_pool_capacity(mode: NotificationMode, n_workers: int = 8,
                       pool_size: int = 50, overshoot: float = 1.0,
                       seed: int = 113, config=None,
                       label: str = None) -> PoolCapacityResult:
    """Offer exactly ``overshoot × n × P`` long-lived connections; ideal
    dispatch establishes all of them, imbalanced dispatch strands some on
    full workers while others keep spare pool slots."""
    env = Environment()
    registry = RngRegistry(seed)
    profile = ServiceProfile(max_connections=pool_size)
    server = LBServer(env, n_workers=n_workers, ports=[443], mode=mode,
                      profile=profile, config=config,
                      hash_seed=registry.stream("hash").randrange(2 ** 32))
    server.start()

    total = int(n_workers * pool_size * overshoot)
    rng = registry.stream("conns")
    conns: List[Connection] = []

    def feeder(env):
        for i in range(total):
            conn = Connection(
                FourTuple(0x0A000000 + rng.randrange(1 << 20),
                          rng.randrange(1024, 65535), 0xC0A80001, 443),
                created_time=env.now)
            server.connect(conn)
            conns.append(conn)
            yield env.timeout(0.002)

    env.process(feeder(env))
    env.run(until=total * 0.002 + 1.0)

    established = sum(len(w.conns) for w in server.workers)
    refused = sum(w.pool_exhausted for w in server.workers)
    stranded = sum(
        1 for c in conns
        if c.state.value == "established" and c.worker is None)
    spare = sum(max(0, pool_size - len(w.conns)) for w in server.workers)
    return PoolCapacityResult(
        mode=label or mode.value,
        pool_size=pool_size,
        n_workers=n_workers,
        offered=total,
        established=established,
        stranded=stranded,
        refused_pool_exhausted=refused,
        capacity_utilization=established / (n_workers * pool_size),
        spare_slots=spare,
    )


def _run_all_pool_arms(n_workers: int = 8, pool_size: int = 50,
                       seed: int = 113) -> List[PoolCapacityResult]:
    """The four arms: 3 modes + Hermes with the capacity filter stage."""
    from ..core.config import HermesConfig

    results = [
        _run_pool_capacity(mode, n_workers=n_workers, pool_size=pool_size,
                           seed=seed)
        for mode in (NotificationMode.EXCLUSIVE,
                     NotificationMode.REUSEPORT,
                     NotificationMode.HERMES)
    ]
    capacity_config = HermesConfig(
        filter_order=("time", "capacity", "conn", "event"))
    results.append(_run_pool_capacity(
        NotificationMode.HERMES, n_workers=n_workers,
        pool_size=pool_size, seed=seed, config=capacity_config,
        label="hermes+capacity"))
    return results


def _arm_line(r: PoolCapacityResult) -> str:
    return (f"{r.mode:16s} established {r.established}/"
            f"{r.n_workers * r.pool_size} "
            f"({r.capacity_utilization * 100:.0f}% of capacity)  "
            f"stranded {r.stranded}  spare slots {r.spare_slots}  "
            f"pool-refused {r.refused_pool_exhausted}")


def _cells(seed, overrides):
    params = {"n_workers": overrides.get("n_workers", 8),
              "pool_size": overrides.get("pool_size", 50)}
    arms = ("exclusive", "reuseport", "hermes", "hermes+capacity")
    return tuple(CellSpec("pool_capacity", arm, dict(params, arm=arm), seed)
                 for arm in arms)


def _run_cell(cell):
    from dataclasses import asdict
    p = cell.params
    arm = p["arm"]
    if arm == "hermes+capacity":
        from ..core.config import HermesConfig
        r = _run_pool_capacity(
            NotificationMode.HERMES, n_workers=p["n_workers"],
            pool_size=p["pool_size"], seed=cell.seed,
            config=HermesConfig(
                filter_order=("time", "capacity", "conn", "event")),
            label="hermes+capacity")
    else:
        r = _run_pool_capacity(NotificationMode(arm),
                               n_workers=p["n_workers"],
                               pool_size=p["pool_size"], seed=cell.seed)
    return dict(asdict(r), rendered=_arm_line(r))


lined_experiment("pool_capacity",
                 "Connection-pool exhaustion under uneven distribution",
                 _cells, _run_cell, default_seed=113)

run_pool_capacity = deprecated(_run_pool_capacity,
                               "registry.get('pool_capacity').run()")
run_all_pool_arms = deprecated(_run_all_pool_arms,
                               "registry.get('pool_capacity').run()")


if __name__ == "__main__":  # pragma: no cover - manual harness
    for r in _run_all_pool_arms():
        print(_arm_line(r))
