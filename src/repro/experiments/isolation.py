"""Tenant performance isolation — the paper's central motivation.

§1: "Since each worker handles traffic from a large number of tenants,
preventing worker overload is crucial to preserving inter-tenant
performance isolation."

The scenario: a small, latency-sensitive tenant shares a device with a
dominant tenant (the §7 skew: top tenants carry 40%+ of traffic) whose
requests are heavy.  Under epoll exclusive, both tenants concentrate on
the same few workers, so the whale's load lands directly on the minnow's
latency.  Hermes spreads both and keeps steering new connections away
from busy workers, so the minnow's P99 stays near its intrinsic service
time.

We report the small tenant's P99 and 499 (client-timeout) rate per mode.
"""

from __future__ import annotations

from dataclasses import dataclass
from ..lb.server import LBServer, NotificationMode
from ..sim.engine import Environment
from ..sim.rng import RngRegistry
from ..workloads.distributions import QuantileSampler, RequestFactory
from ..workloads.generator import TrafficGenerator, WorkloadSpec
from .registry import CellSpec, deprecated, lined_experiment

__all__ = ["IsolationResult", "run_isolation"]

_MS = 1e-3

SMALL_TENANT_PORT = 20001
WHALE_TENANT_PORT = 20002


@dataclass(frozen=True)
class IsolationResult:
    mode: str
    #: The latency-sensitive tenant's view.
    small_avg_ms: float
    small_p99_ms: float
    small_timeouts_499: int
    small_completed: int
    #: The whale's throughput (it must not be starved either).
    whale_completed: int


def _run_isolation(mode: NotificationMode, n_workers: int = 8,
                   duration: float = 4.0, seed: int = 71,
                   client_deadline: float = 0.2) -> IsolationResult:
    env = Environment()
    registry = RngRegistry(seed)
    server = LBServer(env, n_workers=n_workers,
                      ports=[SMALL_TENANT_PORT, WHALE_TENANT_PORT],
                      mode=mode,
                      hash_seed=registry.stream("hash").randrange(2 ** 32))
    server.start()

    # The minnow: tiny requests, long-lived connections, cares about P99.
    small_factory = RequestFactory(
        service_sampler=QuantileSampler([(0.5, 0.2 * _MS),
                                         (0.99, 0.8 * _MS)]),
        min_events=1, max_events=1, handler="small")
    small = WorkloadSpec(
        name="small-tenant", conn_rate=60.0, duration=duration,
        factory=small_factory, ports=(SMALL_TENANT_PORT,),
        tenant_ids=(1,),
        requests_per_conn=20, request_gap_mean=0.05,
        request_timeout=client_deadline)
    small_gen = TrafficGenerator(env, server,
                                 registry.stream("small"), small)

    # The whale: heavy requests at volume (compression/SSL grade work).
    whale_factory = RequestFactory(
        service_sampler=QuantileSampler([(0.5, 8 * _MS), (0.9, 30 * _MS),
                                         (0.99, 120 * _MS)], cap=0.4),
        min_events=1, max_events=2, handler="whale")
    whale = WorkloadSpec(
        name="whale-tenant", conn_rate=24.0, duration=duration,
        factory=whale_factory, ports=(WHALE_TENANT_PORT,),
        tenant_ids=(2,),
        requests_per_conn=10, request_gap_mean=0.04)
    whale_gen = TrafficGenerator(env, server,
                                 registry.stream("whale"), whale)

    small_gen.start()
    whale_gen.start()
    env.run(until=duration + 1.5)

    small_lat = server.metrics.tenant_latencies.get(1)
    whale_lat = server.metrics.tenant_latencies.get(2)
    return IsolationResult(
        mode=mode.value,
        small_avg_ms=small_lat.mean * 1e3 if small_lat else 0.0,
        small_p99_ms=small_lat.p99 * 1e3 if small_lat else 0.0,
        small_timeouts_499=small_gen.stats.timeouts_499,
        small_completed=len(small_lat) if small_lat else 0,
        whale_completed=len(whale_lat) if whale_lat else 0,
    )


def _line(r: IsolationResult) -> str:
    return (f"{r.mode:10s} small tenant: avg {r.small_avg_ms:7.2f} ms  "
            f"p99 {r.small_p99_ms:8.2f} ms  499s "
            f"{r.small_timeouts_499:4d}  completed {r.small_completed}")


def _cells(seed, overrides):
    params = {"n_workers": overrides.get("n_workers", 8),
              "duration": overrides.get("duration", 4.0)}
    return tuple(
        CellSpec("isolation", mode.value, dict(params, mode=mode.value),
                 seed)
        for mode in (NotificationMode.EXCLUSIVE, NotificationMode.REUSEPORT,
                     NotificationMode.HERMES))


def _run_cell(cell):
    from dataclasses import asdict
    p = cell.params
    r = _run_isolation(NotificationMode(p["mode"]),
                       n_workers=p["n_workers"], duration=p["duration"],
                       seed=cell.seed)
    return dict(asdict(r), rendered=_line(r))


lined_experiment("isolation", "Tenant performance isolation",
                 _cells, _run_cell, default_seed=71)

run_isolation = deprecated(_run_isolation,
                           "registry.get('isolation').run()")


if __name__ == "__main__":  # pragma: no cover - manual harness
    for mode in (NotificationMode.EXCLUSIVE, NotificationMode.REUSEPORT,
                 NotificationMode.HERMES):
        print(_line(_run_isolation(mode)))
