"""Fleet scale-out: stateful vs stateless connection lookup under churn.

The grid runs a ``repro.fleet`` fleet at several sizes (instances ×
policy), each cell driving steady traffic through the ECMP ingress tier
while the fault plan rolls the backend set (``backend_churn``) and then
kills the busiest LB instance (``instance_crash``).  Every cell runs
under the :class:`~repro.check.PccMonitor` plus per-instance invariant
monitors, so a per-connection-consistency violation fails the cell
loudly instead of skewing its numbers.

The qualitative result the experiment reproduces (Concury / the
cluster-of-clusters scaling argument): with the **stateless** lookup,
connections owned by a crashed instance fail over to survivors and keep
their backend — broken connections stay bounded by the backend churn
alone — while the **stateful** per-instance table dies with its
instance, so every connection it owned breaks.  The verdict line ranks
the two policies on p99 and broken-connection count at every fleet size.

Cells are independent and fully determined by ``(key, params, seed)``,
so the grid sweeps and memoizes like every other experiment.
"""

from __future__ import annotations

from typing import Any, Dict, Sequence, Tuple

from .registry import CellSpec, ExperimentSpec, concat_rendered, register

__all__ = ["run_fleet_cell", "BASE_WORKLOAD", "FLEET_SIZES", "POLICIES",
           "SHARDED_SIZES"]

#: Workload + fault schedule shared by every cell.  The crash lands after
#: the churn so the stateless policy has to survive both: re-resolve
#: version-stamped flows *and* migrate the dead instance's connections.
BASE_WORKLOAD: Dict[str, Any] = {
    "n_workers": 2,
    "conn_rate": 150.0,
    "duration": 1.5,
    "churn_at": 0.6,
    "churn_k": 2,
    "crash_at": 0.9,
    "detect_delay": 0.005,
}

#: Fleet sizes the grid scales across (the acceptance bar is >= 3).
FLEET_SIZES: Tuple[int, ...] = (2, 4, 8)

#: Lookup policies head-to-head at every size.
POLICIES: Tuple[str, ...] = ("stateful", "stateless")

#: Opt-in process-sharded sizes (``sharded_sizes`` tunable).  Off by
#: default so the default grid — and GOLDEN_FLEET — is untouched; the
#: sharded tier exists to scale past what one event loop can hold.
SHARDED_SIZES: Tuple[int, ...] = (16, 32, 64)


def run_fleet_cell(seed: int, params: Dict[str, Any]) -> Dict[str, Any]:
    """One cell: a fresh fleet under churn + crash, PCC-monitored."""
    from ..check.runner import run_monitored_fleet

    workload = dict(BASE_WORKLOAD)
    workload.update({k: params[k] for k in BASE_WORKLOAD if k in params})
    n_instances = params["n_instances"]
    policy = params["policy"]

    if params.get("sharded"):
        return _run_sharded_cell(seed, n_instances, policy, workload,
                                 int(params.get("jobs", 1)))

    pcc, passes, summary = run_monitored_fleet(
        policy=policy, n_instances=n_instances,
        n_workers=workload["n_workers"], seed=seed,
        duration=workload["duration"], conn_rate=workload["conn_rate"],
        churn_at=workload["churn_at"], churn_k=workload["churn_k"],
        crash_at=workload["crash_at"],
        detect_delay=workload["detect_delay"])

    rendered = (
        f"{n_instances}x {policy:<9s} | p99={summary['p99_ms']:7.2f}ms "
        f"avg={summary['avg_ms']:6.2f}ms done={summary['completed']:5d} "
        f"failed={summary['failed']:3d} broken={summary['broken']:3d} "
        f"(inst={summary['broken_instance']} "
        f"backend={summary['broken_backend']}) "
        f"migrated={summary['migrated']:3d} "
        f"pcc={'OK' if not pcc.violations else 'VIOLATED'}")
    return {
        "instances": n_instances,
        "policy": policy,
        "p99_ms": round(summary["p99_ms"], 6),
        "avg_ms": round(summary["avg_ms"], 6),
        "completed": summary["completed"],
        "failed": summary["failed"],
        "broken": summary["broken"],
        "broken_instance": summary["broken_instance"],
        "broken_backend": summary["broken_backend"],
        "migrated": summary["migrated"],
        "pcc_violations": summary["pcc_violations"],
        "checks_passed": passes,
        "rendered": rendered,
    }


def _run_sharded_cell(seed: int, n_instances: int, policy: str,
                      workload: Dict[str, Any], jobs: int) -> Dict[str, Any]:
    """A process-sharded cell: churn only (instance crash cannot shard)."""
    from ..fleet.sharded import run_sharded_fleet

    doc = run_sharded_fleet(
        policy=policy, n_instances=n_instances,
        n_workers=workload["n_workers"], seed=seed,
        duration=workload["duration"], conn_rate=workload["conn_rate"],
        churn_at=workload["churn_at"], churn_k=workload["churn_k"],
        jobs=jobs, check=True)
    rendered = (
        f"{n_instances}x {policy:<9s} | p99={doc['p99_ms']:7.2f}ms "
        f"avg={doc['avg_ms']:6.2f}ms done={doc['completed']:5d} "
        f"failed={doc['failed']:3d} broken={doc['broken']:3d} "
        f"(backend={doc['broken_backend']}) sharded "
        f"pcc={'OK' if not doc['pcc_violations'] else 'VIOLATED'}")
    # Note: ``jobs`` must not leak into the result doc — the cell output
    # is byte-identical for any worker count, and the memo cache must
    # agree.
    return {
        "instances": n_instances,
        "policy": policy,
        "sharded": True,
        "p99_ms": round(doc["p99_ms"], 6),
        "avg_ms": round(doc["avg_ms"], 6),
        "completed": doc["completed"],
        "failed": doc["failed"],
        "broken": doc["broken"],
        "broken_instance": 0,
        "broken_backend": doc["broken_backend"],
        "migrated": 0,
        "pcc_violations": doc["pcc_violations"],
        "checks_passed": doc["passes"],
        "rendered": rendered,
    }


def _cells(seed: int, overrides: Dict[str, Any]) -> Tuple[CellSpec, ...]:
    wanted = overrides.get("cells")
    sizes = tuple(overrides.get("instances", FLEET_SIZES))
    policies = tuple(overrides.get("policies", POLICIES))
    workload_overrides = {k: overrides[k] for k in BASE_WORKLOAD
                          if k in overrides}
    cells = []
    for n_instances in sizes:
        for policy in policies:
            key = f"{n_instances}x/{policy}"
            if wanted is not None and key not in wanted:
                continue
            params = dict(workload_overrides)
            params["n_instances"] = n_instances
            params["policy"] = policy
            cells.append(CellSpec("fleet_scale", key, params, seed))
    for n_instances in tuple(overrides.get("sharded_sizes", ())):
        key = f"{n_instances}x/sharded"
        if wanted is not None and key not in wanted:
            continue
        params = dict(workload_overrides)
        params["n_instances"] = int(n_instances)
        params["policy"] = "stateless"
        params["sharded"] = True
        params["jobs"] = int(overrides.get("jobs", 1))
        cells.append(CellSpec("fleet_scale", key, params, seed))
    return tuple(cells)


def _verdict(cells: Sequence[CellSpec],
             docs: Sequence[Dict[str, Any]]) -> str:
    by_key = {cell.key: doc for cell, doc in zip(cells, docs)}
    sizes = sorted({doc["instances"] for doc in docs})
    pairs = [(n, by_key.get(f"{n}x/stateful"), by_key.get(f"{n}x/stateless"))
             for n in sizes]
    pairs = [(n, sf, sl) for n, sf, sl in pairs
             if sf is not None and sl is not None]
    if not pairs:
        return "verdict: need both policies at one size for a comparison"
    lines = []
    stateless_survives = True
    for n, sf, sl in pairs:
        winner = "stateless" if sl["p99_ms"] <= sf["p99_ms"] else "stateful"
        if sl["broken"] >= sf["broken"] or sl["broken_instance"] != 0:
            stateless_survives = False
        lines.append(
            f"{n}x: p99 stateless {sl['p99_ms']:.2f}ms vs stateful "
            f"{sf['p99_ms']:.2f}ms ({winner} wins); broken "
            f"{sl['broken']} vs {sf['broken']}")
    head = ("verdict: stateless lookup survives the instance crash "
            "(broken stays backend-churn-bounded at every size)"
            if stateless_survives else
            "verdict: stateless did NOT dominate on broken connections "
            "at this seed/config")
    return head + "\n  " + "\n  ".join(lines)


def _merge(cells: Sequence[CellSpec],
           docs: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    verdict = _verdict(cells, docs)
    return {
        "cells": {cell.key: doc for cell, doc in zip(cells, docs)},
        "verdict": verdict,
        "rendered": concat_rendered(docs) + "\n" + verdict,
    }


register(ExperimentSpec(
    name="fleet_scale",
    title="Fleet scale-out: stateful vs stateless lookup under churn+crash",
    cells=_cells, run_cell=lambda cell: run_fleet_cell(
        cell.seed, dict(cell.params)),
    merge=_merge, render=lambda merged: merged["rendered"],
    default_seed=31,
    tunables={
        "cells": "subset of cell keys to run (default: all sizes×policies)",
        "instances": "fleet sizes to sweep (default: 2, 4, 8)",
        "policies": "lookup policies (default: stateful, stateless)",
        "n_workers": "workers per LB instance",
        "conn_rate": "steady connection rate (cps)",
        "duration": "cell duration (s)",
        "churn_at": "backend churn time (s)",
        "churn_k": "backends replaced by the churn",
        "crash_at": "instance crash time (s)",
        "detect_delay": "instance failure-detection window (s)",
        "sharded_sizes": "extra process-sharded stateless sizes "
                         "(e.g. 16,32,64; churn only, no crash)",
        "jobs": "worker processes for sharded cells (output is "
                "byte-identical for any value)",
    }))
