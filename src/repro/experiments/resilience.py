"""Registry adapter for the fault × mode resilience matrix.

The implementation lives in :mod:`repro.faults.resilience`; this module
exposes it through the unified experiment registry so the matrix can be
decomposed into independent (scenario, mode) cells, swept in parallel,
and memoized like every table and figure.  The merged document is the
exact canonical payload :meth:`ResilienceMatrix.to_json` produces, so a
sweep of the full default grid is byte-identical to
``run_resilience_matrix()``.
"""

from __future__ import annotations

from ..faults.resilience import (RESILIENCE_MODES, SCENARIOS,
                                 ResilienceCell, ResilienceMatrix,
                                 render_matrix, run_resilience_cell)
from ..lb.server import NotificationMode
from .registry import CellSpec, ExperimentSpec, register

__all__ = ["matrix_from_doc"]


def _cells(seed, overrides):
    scenarios = tuple(overrides.get("scenarios", tuple(SCENARIOS)))
    modes = tuple(overrides.get("modes",
                                tuple(m.value for m in RESILIENCE_MODES)))
    n_workers = overrides.get("n_workers", 8)
    return tuple(
        CellSpec("resilience", f"{scenario}/{mode}",
                 {"scenario": scenario, "mode": mode,
                  "n_workers": n_workers}, seed)
        for scenario in scenarios for mode in modes)


def _run_cell(cell):
    p = cell.params
    result = run_resilience_cell(p["scenario"],
                                 NotificationMode(p["mode"]),
                                 seed=cell.seed, n_workers=p["n_workers"])
    return result.to_dict()


def _merge(cells, docs):
    # The matrix payload mirrors ResilienceMatrix.to_json exactly so the
    # CLI writes byte-identical output whichever path produced it.
    return {"seed": cells[0].seed if cells else 0, "cells": list(docs)}


def matrix_from_doc(merged: dict) -> ResilienceMatrix:
    cells = tuple(ResilienceCell(**doc) for doc in merged["cells"])
    return ResilienceMatrix(cells=cells, seed=merged["seed"])


def _render(merged: dict) -> str:
    return render_matrix(matrix_from_doc(merged))


register(ExperimentSpec(
    name="resilience", title="Fault × mode resilience matrix",
    cells=_cells, run_cell=_run_cell, merge=_merge,
    render=_render, default_seed=7,
    tunables={
        "scenarios": "scenario subset (default: all four)",
        "modes": "mode subset (default: exclusive/reuseport/hermes/prequal)",
        "n_workers": "workers behind each device",
    }))


if __name__ == "__main__":  # pragma: no cover - manual harness
    from ..faults.resilience import run_resilience_matrix
    print(render_matrix(run_resilience_matrix()))
