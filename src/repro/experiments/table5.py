"""Table 5 — CPU overhead of Hermes components under three loads.

The paper's perf-flame-graph measurement: Counter (atomic shm updates),
Scheduler (filter arithmetic), System call (eBPF map updates), and
Dispatcher (the in-kernel program) — 0.674% to 2.436% total, dominated by
the userspace side, with the counter growing with connection volume and
the dispatcher staying tiny.

We run a Hermes device under the light/medium/heavy mix, collect actual
operation counts from every component, and convert them to utilization
with the configured cost model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..analysis.reporting import render_table
from ..core.overhead import ComponentOverhead, compute_overhead
from ..lb.server import NotificationMode
from ..workloads.cases import build_case_workload
from .common import run_spec

__all__ = ["OverheadRow", "run_table5", "render_table5"]


@dataclass(frozen=True)
class OverheadRow:
    load: str
    counter_pct: float
    scheduler_pct: float
    syscall_pct: float
    dispatcher_pct: float

    @property
    def total_pct(self) -> float:
        return (self.counter_pct + self.scheduler_pct
                + self.syscall_pct + self.dispatcher_pct)


def run_table5(n_workers: int = 8, duration: float = 3.0,
               seed: int = 53, case: str = "case1") -> List[OverheadRow]:
    rows: List[OverheadRow] = []
    for load in ("light", "medium", "heavy"):
        spec = build_case_workload(case, load, n_workers=n_workers,
                                   duration=duration)
        result = run_spec(NotificationMode.HERMES, spec,
                          n_workers=n_workers, seed=seed, settle=0.5,
                          keep_server=True)
        server = result.server
        elapsed = server.metrics.elapsed
        groups = server.groups
        overhead: ComponentOverhead = compute_overhead(
            wsts=[g.wst for g in groups],
            schedulers=[g.scheduler for g in groups],
            sel_maps=[g.sel_map for g in groups],
            programs=[g.program for g in groups],
            elapsed=elapsed, n_cores=n_workers,
            costs=server.config.costs)
        pct = overhead.as_percentages()
        rows.append(OverheadRow(
            load=load,
            counter_pct=pct["counter"],
            scheduler_pct=pct["scheduler"],
            syscall_pct=pct["syscall"],
            dispatcher_pct=pct["dispatcher"],
        ))
    return rows


def render_table5(rows: List[OverheadRow]) -> str:
    table_rows = []
    for row in rows:
        table_rows.append([
            row.load.capitalize(),
            f"{row.counter_pct:.3f}%",
            f"{row.scheduler_pct:.3f}%",
            f"{row.syscall_pct:.3f}%",
            f"{row.dispatcher_pct:.3f}%",
            f"{row.total_pct:.3f}%",
        ])
    return render_table(
        ["Load", "Counter", "Scheduler", "System call", "Dispatcher",
         "Total"],
        table_rows,
        title="Table 5: CPU overhead of Hermes components")


if __name__ == "__main__":  # pragma: no cover - manual harness
    print(render_table5(run_table5()))
