"""Table 5 — CPU overhead of Hermes components under three loads.

The paper's perf-flame-graph measurement: Counter (atomic shm updates),
Scheduler (filter arithmetic), System call (eBPF map updates), and
Dispatcher (the in-kernel program) — 0.674% to 2.436% total, dominated by
the userspace side, with the counter growing with connection volume and
the dispatcher staying tiny.

We run a Hermes device under the light/medium/heavy mix, collect actual
operation counts from every component, and convert them to utilization
with the configured cost model.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import List, Sequence, Tuple

from ..analysis.reporting import render_table
from ..core.overhead import ComponentOverhead, compute_overhead
from ..lb.server import NotificationMode
from ..workloads.cases import build_case_workload
from .common import run_spec
from .registry import CellSpec, ExperimentSpec, deprecated, register

__all__ = ["OverheadRow", "run_table5", "render_table5"]

_LOADS = ("light", "medium", "heavy")


@dataclass(frozen=True)
class OverheadRow:
    load: str
    counter_pct: float
    scheduler_pct: float
    syscall_pct: float
    dispatcher_pct: float

    @property
    def total_pct(self) -> float:
        return (self.counter_pct + self.scheduler_pct
                + self.syscall_pct + self.dispatcher_pct)


def _run_load(load: str, n_workers: int, duration: float, seed: int,
              case: str) -> OverheadRow:
    """One load point of the overhead table (one sweep cell)."""
    spec = build_case_workload(case, load, n_workers=n_workers,
                               duration=duration)
    result = run_spec(NotificationMode.HERMES, spec,
                      n_workers=n_workers, seed=seed, settle=0.5,
                      keep_server=True)
    server = result.server
    elapsed = server.metrics.elapsed
    groups = server.groups
    overhead: ComponentOverhead = compute_overhead(
        wsts=[g.wst for g in groups],
        schedulers=[g.scheduler for g in groups],
        sel_maps=[g.sel_map for g in groups],
        programs=[g.program for g in groups],
        elapsed=elapsed, n_cores=n_workers,
        costs=server.config.costs)
    pct = overhead.as_percentages()
    return OverheadRow(
        load=load,
        counter_pct=pct["counter"],
        scheduler_pct=pct["scheduler"],
        syscall_pct=pct["syscall"],
        dispatcher_pct=pct["dispatcher"],
    )


def _run_table5(n_workers: int = 8, duration: float = 3.0,
                seed: int = 53, case: str = "case1") -> List[OverheadRow]:
    return [_run_load(load, n_workers, duration, seed, case)
            for load in _LOADS]


def render_table5(rows: List[OverheadRow]) -> str:
    table_rows = []
    for row in rows:
        table_rows.append([
            row.load.capitalize(),
            f"{row.counter_pct:.3f}%",
            f"{row.scheduler_pct:.3f}%",
            f"{row.syscall_pct:.3f}%",
            f"{row.dispatcher_pct:.3f}%",
            f"{row.total_pct:.3f}%",
        ])
    return render_table(
        ["Load", "Counter", "Scheduler", "System call", "Dispatcher",
         "Total"],
        table_rows,
        title="Table 5: CPU overhead of Hermes components")


def _cells(seed: int, overrides: dict) -> Tuple[CellSpec, ...]:
    loads = tuple(overrides.get("loads", _LOADS))
    params = {"n_workers": overrides.get("n_workers", 8),
              "duration": overrides.get("duration", 3.0),
              "case": overrides.get("case", "case1")}
    return tuple(CellSpec("table5", load, dict(params, load=load), seed)
                 for load in loads)


def _run_cell(cell: CellSpec) -> dict:
    p = cell.params
    row = _run_load(p["load"], p["n_workers"], p["duration"], cell.seed,
                    p["case"])
    return asdict(row)


def _merge(cells: Sequence[CellSpec], docs: Sequence[dict]) -> dict:
    rows = [OverheadRow(**doc) for doc in docs]
    return {"rows": list(docs), "rendered": render_table5(rows)}


register(ExperimentSpec(
    name="table5", title="CPU overhead of Hermes components",
    cells=_cells, run_cell=_run_cell, merge=_merge,
    render=lambda merged: merged["rendered"], default_seed=53))

run_table5 = deprecated(_run_table5, "registry.get('table5').run()")


if __name__ == "__main__":  # pragma: no cover - manual harness
    print(render_table5(_run_table5()))
