"""Figs. A3/A4 — the walkthrough example.

Five requests arrive on five new connections in order a, b1, b2, b3, b4.
Request ``a`` has two events of 2t each; each ``b`` has two events of t
each.  Three workers serve them.

- Epoll exclusive sends every connection to the wait-queue-head worker
  unless it is busy — the input sequence lands lopsided (Fig. A3 top).
- Reuseport may hash a ``b`` onto the worker already chewing on ``a``
  (Fig. A3 bottom).
- Hermes tracks busy/conn counts and hang timestamps and spreads the five
  connections a/b1 → three workers with nobody stuck behind ``a``
  (Fig. A4).

We drive the deterministic scenario through the full stack and report the
per-worker assignment and the makespan/latency of each request.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..core.config import HermesConfig
from ..kernel.hash import FourTuple
from ..kernel.tcp import Connection, Request
from ..lb.server import LBServer, NotificationMode
from ..sim.engine import Environment
from .registry import CellSpec, deprecated, lined_experiment

__all__ = ["WalkthroughResult", "run_figa4", "T_UNIT"]

#: The time unit 't' of the example (seconds).
T_UNIT = 0.010


@dataclass
class WalkthroughResult:
    mode: str
    #: request name -> worker id that served it.
    assignment: Dict[str, int]
    #: request name -> completion latency (in t units).
    latency_t: Dict[str, float]
    #: Worker ids that served at least one request.
    workers_used: int
    #: Max per-worker share of the five requests.
    max_share: float
    makespan_t: float


def _run_figa4(mode: NotificationMode,
               n_workers: int = 3, seed: int = 3,
               hash_seed: int = 12) -> WalkthroughResult:
    env = Environment()
    config = HermesConfig(
        hang_threshold=3.5 * T_UNIT,  # 'unavailable if stuck > 3t'
        min_workers=1,
        epoll_timeout=T_UNIT / 10)
    server = LBServer(env, n_workers=n_workers, ports=[443], mode=mode,
                      config=config, hash_seed=hash_seed)
    server.start()

    requests: Dict[str, Request] = {}
    conns: Dict[str, Connection] = {}

    def send(name: str, index: int, event_time: float):
        conn = Connection(
            FourTuple(0x0A0000AA + index * 17, 41000 + index * 131,
                      0xC0A80001, 443),
            created_time=env.now)
        request = Request(event_times=(event_time, event_time))
        requests[name] = request
        conns[name] = conn
        server.connect(conn)
        server.deliver(conn, request)

    # The input sequence a, b1..b4 — one arrival per t, as in Fig. A4's
    # t1..t5 timeline.
    env.schedule_callback(0.0, lambda: send("a", 0, 2 * T_UNIT))
    for i in range(1, 5):
        env.schedule_callback(i * T_UNIT,
                              lambda i=i: send(f"b{i}", i, T_UNIT))
    env.run(until=40 * T_UNIT)

    assignment: Dict[str, int] = {}
    latency: Dict[str, float] = {}
    makespan = 0.0
    for name, request in requests.items():
        conn = conns[name]
        if conn.worker is not None:
            assignment[name] = conn.worker.worker_id
        latency[name] = ((request.completed_time - request.arrival_time)
                         / T_UNIT if request.completed_time >= 0 else -1)
        makespan = max(makespan, request.completed_time)
    counts: Dict[int, int] = {}
    for worker_id in assignment.values():
        counts[worker_id] = counts.get(worker_id, 0) + 1
    total = sum(counts.values()) or 1
    return WalkthroughResult(
        mode=mode.value,
        assignment=assignment,
        latency_t=latency,
        workers_used=len(counts),
        max_share=max(counts.values()) / total if counts else 0.0,
        makespan_t=makespan / T_UNIT,
    )


def _line(r: WalkthroughResult) -> str:
    lat = {k: round(v, 2) for k, v in sorted(r.latency_t.items())}
    return (f"{r.mode:10s} workers used {r.workers_used}  "
            f"max share {r.max_share:.2f}  makespan {r.makespan_t:.1f}t  "
            f"latencies {lat}")


def _cells(seed, overrides):
    params = {"n_workers": overrides.get("n_workers", 3),
              "hash_seed": overrides.get("hash_seed", 12)}
    return tuple(
        CellSpec("figa4", mode.value, dict(params, mode=mode.value), seed)
        for mode in (NotificationMode.EXCLUSIVE, NotificationMode.REUSEPORT,
                     NotificationMode.HERMES))


def _run_cell(cell):
    from dataclasses import asdict
    p = cell.params
    r = _run_figa4(NotificationMode(p["mode"]), n_workers=p["n_workers"],
                   seed=cell.seed, hash_seed=p["hash_seed"])
    return dict(asdict(r), rendered=_line(r))


lined_experiment("figa4", "Walkthrough example (Figs. A3/A4)",
                 _cells, _run_cell, default_seed=3)

run_figa4 = deprecated(_run_figa4, "registry.get('figa4').run()")


if __name__ == "__main__":  # pragma: no cover - manual harness
    for mode in (NotificationMode.EXCLUSIVE, NotificationMode.REUSEPORT,
                 NotificationMode.HERMES):
        print(_line(_run_figa4(mode)))
