"""Shared harness for every experiment.

Guarantees the A/B discipline Table 3 needs: for one (case, load) cell, all
three notification modes see byte-identical traffic (same arrival times,
same 4-tuples, same request shapes) because the traffic RNG stream is
derived from the cell, not the mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.config import HermesConfig
from ..lb.server import LBServer, NotificationMode
from ..lb.worker import ServiceProfile
from ..sim.engine import Environment
from ..sim.rng import RngRegistry
from ..workloads.cases import build_case_workload
from ..workloads.generator import TrafficGenerator, WorkloadSpec

__all__ = ["CellResult", "run_spec", "run_case_cell", "MODES_UNDER_TEST"]

#: The three modes Table 3 compares.
MODES_UNDER_TEST = (
    NotificationMode.EXCLUSIVE,
    NotificationMode.REUSEPORT,
    NotificationMode.HERMES,
)


@dataclass
class CellResult:
    """Everything one experiment cell reports."""

    mode: str
    workload: str
    avg_ms: float
    p99_ms: float
    throughput_rps: float
    completed: int
    failed: int
    refused: int
    cpu_sd: float
    conn_sd: float
    cpu_utils: List[float] = field(default_factory=list)
    accepted_per_worker: List[int] = field(default_factory=list)
    #: Kept alive for experiments that probe deeper (overhead, scheduler
    #: stats); None when the caller asked for a detached summary.
    server: Optional[LBServer] = None

    def row(self) -> tuple:
        """(avg_ms, p99_ms, throughput) — the Table 3 cell format."""
        return (self.avg_ms, self.p99_ms, self.throughput_rps / 1e3)


def run_spec(mode: NotificationMode, spec: WorkloadSpec,
             n_workers: int, seed: int = 7,
             ports: Optional[Sequence[int]] = None,
             config: Optional[HermesConfig] = None,
             profile: Optional[ServiceProfile] = None,
             settle: float = 0.5,
             keep_server: bool = False,
             env_hook=None, tracer=None) -> CellResult:
    """Run one workload spec against a fresh device in the given mode.

    ``settle`` extends the simulation beyond the generation window so
    in-flight requests can finish.  ``env_hook(env, server, gen)`` runs
    before the simulation starts (failure injection, probers, samplers).
    ``tracer`` (a :class:`repro.obs.Tracer`) enables structured tracing of
    the whole stack; it observes only and cannot change the results.
    """
    env = Environment()
    registry = RngRegistry(seed)
    server = LBServer(
        env, n_workers=n_workers,
        ports=list(ports) if ports is not None else list(spec.ports),
        mode=mode, config=config, profile=profile,
        hash_seed=registry.stream("hash-seed").randrange(2 ** 32),
        tracer=tracer)
    server.start()
    # The traffic stream is mode-independent: every mode replays the same
    # connections and requests.
    traffic_rng = registry.stream(f"traffic:{spec.name}")
    gen = TrafficGenerator(env, server, traffic_rng, spec)
    if env_hook is not None:
        env_hook(env, server, gen)
    gen.start()
    env.run(until=spec.duration + settle)
    summary = server.metrics.summary()
    return CellResult(
        mode=mode.value,
        workload=spec.name,
        avg_ms=summary["avg_ms"],
        p99_ms=summary["p99_ms"],
        throughput_rps=summary["throughput_rps"],
        completed=summary["completed"],
        failed=summary["failed"],
        refused=server.metrics.connections_refused,
        cpu_sd=summary["cpu_sd"],
        conn_sd=summary["conn_sd"],
        cpu_utils=server.metrics.cpu_utilizations(),
        accepted_per_worker=[w.accepted
                             for w in server.metrics.workers.values()],
        server=server if keep_server else None,
    )


def run_case_cell(mode: NotificationMode, case: str, load: str,
                  n_workers: int = 16, duration: float = 4.0,
                  ports: Sequence[int] = (443,),
                  seed: int = 7, **kwargs) -> CellResult:
    """Run one (mode, case, load) cell of Table 3."""
    spec = build_case_workload(case, load, n_workers=n_workers,
                               duration=duration, ports=ports)
    return run_spec(mode, spec, n_workers=n_workers, seed=seed, **kwargs)


def compare_modes(case: str, load: str, n_workers: int = 16,
                  duration: float = 4.0, ports: Sequence[int] = (443,),
                  seed: int = 7,
                  modes: Sequence[NotificationMode] = MODES_UNDER_TEST,
                  **kwargs) -> Dict[str, CellResult]:
    """All modes on identical traffic for one (case, load) cell."""
    return {mode.value: run_case_cell(
        mode, case, load, n_workers=n_workers, duration=duration,
        ports=ports, seed=seed, **kwargs) for mode in modes}
