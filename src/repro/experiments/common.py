"""Shared harness for every experiment.

Guarantees the A/B discipline Table 3 needs: for one (case, load) cell, all
three notification modes see byte-identical traffic (same arrival times,
same 4-tuples, same request shapes) because the traffic RNG stream is
derived from the cell, not the mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.config import HermesConfig
from ..lb.server import LBServer, NotificationMode
from ..lb.worker import ServiceProfile
from ..sim.engine import Environment
from ..sim.rng import RngRegistry
from ..workloads.cases import build_case_workload
from ..workloads.generator import TrafficGenerator, WorkloadSpec

__all__ = ["CellResult", "run_spec", "run_case_cell", "MODES_UNDER_TEST",
           "DEFAULT_SEED", "resolve_seed"]

#: The three modes Table 3 compares.
MODES_UNDER_TEST = (
    NotificationMode.EXCLUSIVE,
    NotificationMode.REUSEPORT,
    NotificationMode.HERMES,
)

#: The harness-wide fallback seed.  Callers that care about identity (the
#: registry, the sweep cache) always pass an explicit seed; this exists so
#: interactive use keeps working.
DEFAULT_SEED = 7


def resolve_seed(seed: Optional[int]) -> int:
    """Collapse ``None`` to :data:`DEFAULT_SEED` — the single place the
    fallback is applied, so a cell invoked directly or via the registry
    derives its RNG streams from the same value and hashes identically."""
    return DEFAULT_SEED if seed is None else seed


@dataclass
class CellResult:
    """Everything one experiment cell reports."""

    mode: str
    workload: str
    avg_ms: float
    p99_ms: float
    throughput_rps: float
    completed: int
    failed: int
    refused: int
    cpu_sd: float
    conn_sd: float
    cpu_utils: List[float] = field(default_factory=list)
    accepted_per_worker: List[int] = field(default_factory=list)
    #: Kept alive for experiments that probe deeper (overhead, scheduler
    #: stats); None when the caller asked for a detached summary.
    server: Optional[LBServer] = None

    def row(self) -> tuple:
        """(avg_ms, p99_ms, throughput) — the Table 3 cell format."""
        return (self.avg_ms, self.p99_ms, self.throughput_rps / 1e3)

    def to_doc(self) -> dict:
        """JSON-safe document (drops the live ``server`` handle)."""
        return {
            "mode": self.mode,
            "workload": self.workload,
            "avg_ms": self.avg_ms,
            "p99_ms": self.p99_ms,
            "throughput_rps": self.throughput_rps,
            "completed": self.completed,
            "failed": self.failed,
            "refused": self.refused,
            "cpu_sd": self.cpu_sd,
            "conn_sd": self.conn_sd,
            "cpu_utils": list(self.cpu_utils),
            "accepted_per_worker": list(self.accepted_per_worker),
        }

    @classmethod
    def from_doc(cls, doc: dict) -> "CellResult":
        """Rebuild from :meth:`to_doc` output (``server`` is gone)."""
        return cls(
            mode=doc["mode"], workload=doc["workload"],
            avg_ms=doc["avg_ms"], p99_ms=doc["p99_ms"],
            throughput_rps=doc["throughput_rps"],
            completed=doc["completed"], failed=doc["failed"],
            refused=doc["refused"], cpu_sd=doc["cpu_sd"],
            conn_sd=doc["conn_sd"], cpu_utils=list(doc["cpu_utils"]),
            accepted_per_worker=list(doc["accepted_per_worker"]),
        )


def run_spec(mode: NotificationMode, spec: WorkloadSpec,
             n_workers: int, seed: Optional[int] = None,
             ports: Optional[Sequence[int]] = None,
             config: Optional[HermesConfig] = None,
             profile: Optional[ServiceProfile] = None,
             settle: float = 0.5,
             keep_server: bool = False,
             env_hook=None, tracer=None, prequal_config=None,
             splice_config=None) -> CellResult:
    """Run one workload spec against a fresh device in the given mode.

    ``settle`` extends the simulation beyond the generation window so
    in-flight requests can finish.  ``env_hook(env, server, gen)`` runs
    before the simulation starts (failure injection, probers, samplers).
    ``tracer`` (a :class:`repro.obs.Tracer`) enables structured tracing of
    the whole stack; it observes only and cannot change the results.
    """
    env = Environment()
    registry = RngRegistry(resolve_seed(seed))
    server = LBServer(
        env, n_workers=n_workers,
        ports=list(ports) if ports is not None else list(spec.ports),
        mode=mode, config=config, profile=profile,
        hash_seed=registry.stream("hash-seed").randrange(2 ** 32),
        tracer=tracer, prequal_config=prequal_config,
        splice_config=splice_config)
    server.start()
    # The traffic stream is mode-independent: every mode replays the same
    # connections and requests.
    traffic_rng = registry.stream(f"traffic:{spec.name}")
    gen = TrafficGenerator(env, server, traffic_rng, spec)
    if env_hook is not None:
        env_hook(env, server, gen)
    gen.start()
    env.run(until=spec.duration + settle)
    summary = server.metrics.summary()
    return CellResult(
        mode=mode.value,
        workload=spec.name,
        avg_ms=summary["avg_ms"],
        p99_ms=summary["p99_ms"],
        throughput_rps=summary["throughput_rps"],
        completed=summary["completed"],
        failed=summary["failed"],
        refused=server.metrics.connections_refused,
        cpu_sd=summary["cpu_sd"],
        conn_sd=summary["conn_sd"],
        cpu_utils=server.metrics.cpu_utilizations(),
        accepted_per_worker=[w.accepted
                             for w in server.metrics.workers.values()],
        server=server if keep_server else None,
    )


def run_case_cell(mode: NotificationMode, case: str, load: str,
                  n_workers: int = 16, duration: float = 4.0,
                  ports: Sequence[int] = (443,),
                  seed: Optional[int] = None, **kwargs) -> CellResult:
    """Run one (mode, case, load) cell of Table 3.

    The RNG streams derive from the spec'd seed (``None`` falls back via
    :func:`resolve_seed`), never from mutable module state, so identical
    arguments produce identical results in any process.
    """
    spec = build_case_workload(case, load, n_workers=n_workers,
                               duration=duration, ports=ports)
    return run_spec(mode, spec, n_workers=n_workers,
                    seed=resolve_seed(seed), **kwargs)


def compare_modes(case: str, load: str, n_workers: int = 16,
                  duration: float = 4.0, ports: Sequence[int] = (443,),
                  seed: Optional[int] = None,
                  modes: Sequence[NotificationMode] = MODES_UNDER_TEST,
                  **kwargs) -> Dict[str, CellResult]:
    """All modes on identical traffic for one (case, load) cell.

    Every mode sees the same resolved seed, hence byte-identical traffic."""
    resolved = resolve_seed(seed)
    return {mode.value: run_case_cell(
        mode, case, load, n_workers=n_workers, duration=duration,
        ports=ports, seed=resolved, **kwargs) for mode in modes}
