"""Fig. A5 — CDF of forwarding rules per port.

The appendix argument against cache-aware scheduling: tenant forwarding
rules vary so much per port that no code locality exists to exploit.  We
generate a tenant population with the long-tailed rule-count model and
report the CDF plus its dispersion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..analysis.stats import cdf_points, coefficient_of_variation, percentile
from ..lb.tenant import TenantDirectory
from ..sim.rng import RngRegistry
from .registry import deprecated, simple_experiment

__all__ = ["RuleCdfResult", "run_figa5"]


@dataclass
class RuleCdfResult:
    cdf: List[Tuple[float, float]]
    p50: float
    p90: float
    p99: float
    cov: float
    n_ports: int


def _run_figa5(n_tenants: int = 2000, ports_per_tenant: int = 2,
               mean_rules: float = 10.0, seed: int = 67) -> RuleCdfResult:
    rng = RngRegistry(seed).stream("tenants")
    directory = TenantDirectory.build(
        n_tenants, rng, ports_per_tenant=ports_per_tenant,
        mean_rules=mean_rules)
    rules = [float(r) for r in directory.rules_per_port()]
    return RuleCdfResult(
        cdf=cdf_points(rules),
        p50=percentile(rules, 50),
        p90=percentile(rules, 90),
        p99=percentile(rules, 99),
        cov=coefficient_of_variation(rules),
        n_ports=len(rules),
    )


def _rendered(r: RuleCdfResult) -> str:
    return (f"{r.n_ports} ports: rules P50 {r.p50:.0f}  P90 {r.p90:.0f}  "
            f"P99 {r.p99:.0f}  CoV {r.cov:.2f}")


def _runner(seed: int, params: dict) -> dict:
    from dataclasses import asdict
    r = _run_figa5(
        n_tenants=params.get("n_tenants", 2000),
        ports_per_tenant=params.get("ports_per_tenant", 2),
        mean_rules=params.get("mean_rules", 10.0), seed=seed)
    return dict(asdict(r), rendered=_rendered(r))


simple_experiment("figa5", "CDF of forwarding rules per port",
                  _runner, default_seed=67)

run_figa5 = deprecated(_run_figa5, "registry.get('figa5').run()")


if __name__ == "__main__":  # pragma: no cover - manual harness
    print(_rendered(_run_figa5()))
