"""Paper-style rendering of experiment results.

The benchmark harnesses print the same rows/series the paper reports;
these helpers format them: fixed-width tables for Tables 1-5, (x, y)
series dumps for the figures, and the paper's ✓/✗ effectiveness marking
for Table 3.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

__all__ = ["render_table", "render_series", "mark_effectiveness"]


def render_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str = "", float_fmt: str = "{:.3f}") -> str:
    """A fixed-width text table."""
    formatted_rows: List[List[str]] = []
    for row in rows:
        formatted = []
        for cell in row:
            if isinstance(cell, float):
                formatted.append(float_fmt.format(cell))
            else:
                formatted.append(str(cell))
        formatted_rows.append(formatted)
    widths = [len(h) for h in headers]
    for row in formatted_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in formatted_rows:
        lines.append("  ".join(
            cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_series(name: str, points: Sequence[Tuple[float, float]],
                  x_label: str = "x", y_label: str = "y",
                  max_points: int = 40) -> str:
    """A compact (x, y) dump of a figure series."""
    lines = [f"{name} ({x_label} -> {y_label}, {len(points)} points)"]
    step = max(1, len(points) // max_points)
    for i in range(0, len(points), step):
        x, y = points[i]
        lines.append(f"  {x:12.6g}  {y:12.6g}")
    if points and (len(points) - 1) % step != 0:
        x, y = points[-1]
        lines.append(f"  {x:12.6g}  {y:12.6g}")
    return "\n".join(lines)


def mark_effectiveness(results: Dict[str, Dict[str, float]],
                       latency_slack: float = 0.5,
                       throughput_slack: float = 0.2) -> Dict[str, str]:
    """Table 3's ✓/✗ marking.

    ``results`` maps mode name -> {"avg": s, "p99": s, "thr": rps}.  A cell
    is marked ✗ when its processing time exceeds the best by more than 50%
    or its throughput falls more than 20% below the best (the paper's
    criteria).  A mode gets an overall ✗ if it has multiple ✗ cells.
    """
    if not results:
        return {}
    best_avg = min(r["avg"] for r in results.values())
    best_p99 = min(r["p99"] for r in results.values())
    best_thr = max(r["thr"] for r in results.values())
    marks = {}
    for mode, r in results.items():
        bad = 0
        if best_avg > 0 and r["avg"] > best_avg * (1 + latency_slack):
            bad += 1
        if best_p99 > 0 and r["p99"] > best_p99 * (1 + latency_slack):
            bad += 1
        if best_thr > 0 and r["thr"] < best_thr * (1 - throughput_slack):
            bad += 1
        marks[mode] = "x" if bad >= 2 else ("~" if bad == 1 else "ok")
    return marks
