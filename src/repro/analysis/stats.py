"""Statistical helpers shared by experiments and reports."""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

__all__ = [
    "percentile",
    "cdf_points",
    "mean",
    "population_sd",
    "coefficient_of_variation",
    "normalize",
    "jains_fairness",
]


def mean(values: Sequence[float]) -> float:
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def percentile(values: Sequence[float], p: float) -> float:
    """Linear-interpolated percentile of raw samples, ``p`` in [0, 100]."""
    data = sorted(values)
    if not data:
        return 0.0
    if not 0 <= p <= 100:
        raise ValueError(f"p must be in [0, 100], got {p}")
    if len(data) == 1:
        return data[0]
    rank = (p / 100) * (len(data) - 1)
    low, high = int(math.floor(rank)), int(math.ceil(rank))
    if low == high:
        return data[low]
    frac = rank - low
    # Clamp to the bracketing samples: the weighted sum can underflow
    # below data[low] when both neighbours are subnormal.
    value = data[low] * (1 - frac) + data[high] * frac
    return min(max(value, data[low]), data[high])


def cdf_points(values: Sequence[float],
               max_points: int = 200) -> List[Tuple[float, float]]:
    """(value, cumulative fraction) pairs for CDF figures."""
    data = sorted(values)
    n = len(data)
    if n == 0:
        return []
    step = max(1, n // max_points)
    points = [(data[i], (i + 1) / n) for i in range(0, n, step)]
    if points[-1] != (data[-1], 1.0):
        points.append((data[-1], 1.0))
    return points


def population_sd(values: Sequence[float]) -> float:
    values = list(values)
    if len(values) < 2:
        return 0.0
    m = mean(values)
    return math.sqrt(sum((v - m) ** 2 for v in values) / len(values))


def coefficient_of_variation(values: Sequence[float]) -> float:
    m = mean(values)
    return population_sd(values) / m if m else 0.0


def normalize(values: Sequence[float]) -> List[float]:
    """Scale so the first element is 1.0 (Fig. 12's normalization)."""
    values = list(values)
    if not values:
        return []
    base = values[0]
    if base == 0:
        raise ValueError("cannot normalize by a zero first element")
    return [v / base for v in values]


def jains_fairness(values: Sequence[float]) -> float:
    """Jain's fairness index: 1.0 = perfectly even, 1/n = one hot spot."""
    values = list(values)
    if not values:
        return 1.0
    total = sum(values)
    squares = sum(v * v for v in values)
    if squares == 0:
        return 1.0
    return (total * total) / (len(values) * squares)
