"""Analysis helpers: statistics and paper-style reporting."""

from .export import series_to_csv, table_to_csv, write_csv
from .reporting import mark_effectiveness, render_series, render_table
from .stats import (
    cdf_points,
    coefficient_of_variation,
    jains_fairness,
    mean,
    normalize,
    percentile,
    population_sd,
)

__all__ = [
    "cdf_points",
    "coefficient_of_variation",
    "jains_fairness",
    "mark_effectiveness",
    "mean",
    "normalize",
    "percentile",
    "population_sd",
    "render_series",
    "render_table",
    "series_to_csv",
    "table_to_csv",
    "write_csv",
]
