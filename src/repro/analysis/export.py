"""Plot-ready data export.

The benchmark harnesses print paper-style text; these helpers additionally
persist figure series and table grids as CSV so downstream users can plot
them with any tool (the repo itself stays matplotlib-free).
"""

from __future__ import annotations

import csv
import io
import pathlib
from typing import Dict, Iterable, List, Sequence, Tuple, Union

__all__ = ["series_to_csv", "table_to_csv", "write_csv"]

PathLike = Union[str, pathlib.Path]


def series_to_csv(series: Dict[str, Sequence[Tuple[float, float]]],
                  x_label: str = "x") -> str:
    """Multiple named (x, y) series → one CSV with aligned x column.

    Series may have different x grids; rows are the sorted union of all
    x values, with empty cells where a series has no point.
    """
    if not series:
        return ""
    xs = sorted({x for points in series.values() for x, _ in points})
    by_name = {name: dict(points) for name, points in series.items()}
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    names = list(series)
    writer.writerow([x_label] + names)
    for x in xs:
        row: List[object] = [x]
        for name in names:
            value = by_name[name].get(x, "")
            row.append(value)
        writer.writerow(row)
    return buffer.getvalue()


def table_to_csv(headers: Sequence[str],
                 rows: Iterable[Sequence]) -> str:
    """A headers+rows grid → CSV text."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(list(headers))
    for row in rows:
        writer.writerow(list(row))
    return buffer.getvalue()


def write_csv(path: PathLike, content: str) -> pathlib.Path:
    """Write CSV text to ``path`` (creating parent directories)."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(content)
    return path
