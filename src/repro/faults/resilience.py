"""The resilience matrix: fault class × notification mode → degradation.

For each named fault scenario and each notification mode, run identical
traffic against a fresh device, arm the scenario's :class:`FaultPlan`, and
measure how the mode degrades and recovers:

- **p99 latency** — the tail the fault inflates;
- **hung requests** — completions slower than the hang threshold (the
  paper's 30 ms → 440 s pathology, counted instead of anecdotal);
- **blast radius** — the fraction of in-flight connections stalled or
  killed by the fault at fire/detection time;
- **recovery time** — how long after the fault fires the device's
  completion-latency profile stays degraded: completions are bucketed on
  the sim clock and recovery ends with the last post-fire bucket whose p99
  exceeds :data:`DEGRADED_P99` (0 = the tail never left its normal band).

Two scenarios reproduce the paper's incidents by name: ``worker_hang``
(§2 / Appendix C: a GC-style pause train on the busiest worker) and
``worker_crash`` (§7: the HTTP/2-upgrade crash — busiest worker dies, its
sockets linger for a detection window, clients reconnect).  The paper's
direction to reproduce: EXCLUSIVE concentrates connections on the LIFO
winner, so the busiest worker's failure stalls most of the device, while
HERMES spreads connections and steers new ones away from the victim —
smaller blast radius, faster re-convergence.

Determinism: traffic streams derive from the cell seed (mode-independent —
every mode sees the same connections), fault randomness from a forked
registry, and results serialize to canonical JSON so byte-identical output
is a testable property.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..kernel.nic import Nic
from ..lb.server import LBServer, NotificationMode
from ..obs import Tracer
from ..sim.engine import Environment
from ..sim.rng import RngRegistry
from ..workloads.distributions import FixedFactory
from ..workloads.generator import TrafficGenerator, WorkloadSpec
from .injector import FaultInjector
from .plan import FaultKind, FaultPlan, FaultSpec

__all__ = ["ResilienceCell", "ResilienceMatrix", "SCENARIOS",
           "RESILIENCE_MODES", "run_resilience_cell", "run_resilience_matrix",
           "render_matrix"]

#: Modes compared in the matrix: the Table 3 trio plus PREQUAL, the
#: probe-based latency balancer (``repro.prequal``), plus SPLICE, the
#: in-kernel interposition datapath (``repro.splice``) — the architectural
#: head-to-head the matrix exists for.
RESILIENCE_MODES: Tuple[NotificationMode, ...] = (
    NotificationMode.EXCLUSIVE,
    NotificationMode.REUSEPORT,
    NotificationMode.HERMES,
    NotificationMode.PREQUAL,
    NotificationMode.SPLICE,
)

#: Completions slower than this count as hung (well above the ~ms service
#: times of the scenario workload, aligned with the scheduler's
#: ``hang_threshold``).
HUNG_THRESHOLD = 0.050

#: A latency bucket whose p99 exceeds this is "still degraded" — an order
#: of magnitude above the scenario workload's healthy p99 (~1 ms).
DEGRADED_P99 = 0.010

#: Completion-latency bucket width for the recovery-time sweep.
RECOVERY_BUCKET = 0.100


def _scenario_worker_hang() -> FaultPlan:
    """§2 / Appendix C: a GC-pause train stalls the busiest worker."""
    return FaultPlan(faults=(
        FaultSpec(kind=FaultKind.WORKER_HANG, at=1.0, duration=0.4,
                  target="busiest", count=2, period=0.8),
    ), seed=101)


def _scenario_worker_crash() -> FaultPlan:
    """§7: the busiest worker crashes; sockets linger for a detection
    window; the worker restarts after the incident."""
    return FaultPlan(faults=(
        FaultSpec(kind=FaultKind.WORKER_CRASH, at=1.5, target="busiest",
                  detect_delay=0.2, restart_after=0.7),
    ), seed=102)


def _scenario_slow_worker() -> FaultPlan:
    """One worker serves 6× slower for a second (thermal throttling)."""
    return FaultPlan(faults=(
        FaultSpec(kind=FaultKind.SLOW_WORKER, at=1.0, duration=1.0,
                  target="busiest", magnitude=6.0),
    ), seed=103)


def _scenario_nic_loss() -> FaultPlan:
    """A 30% loss burst at the NIC for half a second."""
    return FaultPlan(faults=(
        FaultSpec(kind=FaultKind.NIC_LOSS, at=1.0, duration=0.5,
                  magnitude=0.3),
    ), seed=104)


#: Named scenarios: name → zero-arg FaultPlan factory.
SCENARIOS: Dict[str, Callable[[], FaultPlan]] = {
    "worker_hang": _scenario_worker_hang,
    "worker_crash": _scenario_worker_crash,
    "slow_worker": _scenario_slow_worker,
    "nic_loss": _scenario_nic_loss,
}


@dataclass(frozen=True)
class ResilienceCell:
    """One (scenario, mode) cell of the matrix."""

    scenario: str
    mode: str
    p99_ms: float
    hung_requests: int
    #: Fraction of in-flight connections stalled/killed by the fault.
    blast_radius: float
    #: Seconds of degraded output after the first fault fired.
    recovery_time: float
    completed: int
    failed: int
    faults_fired: int

    def to_dict(self) -> dict:
        # Round floats so JSON output is stable across platforms and
        # byte-comparable between runs (the determinism CI check).
        data = asdict(self)
        data["p99_ms"] = round(data["p99_ms"], 6)
        data["blast_radius"] = round(data["blast_radius"], 6)
        data["recovery_time"] = round(data["recovery_time"], 6)
        return data


@dataclass(frozen=True)
class ResilienceMatrix:
    """The full fault × mode matrix."""

    cells: Tuple[ResilienceCell, ...]
    seed: int

    def cell(self, scenario: str, mode: str) -> ResilienceCell:
        for c in self.cells:
            if c.scenario == scenario and c.mode == mode:
                return c
        raise KeyError(f"no cell ({scenario}, {mode})")

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(
            {"seed": self.seed,
             "cells": [c.to_dict() for c in self.cells]},
            indent=indent, sort_keys=True)


def _workload(duration: float) -> WorkloadSpec:
    """The scenario workload: steady CPS, multi-request connections with
    gaps (so stalled connections accumulate backlog on a hung worker),
    clients that reconnect after resets (the §7 reconnect storm)."""
    return WorkloadSpec(
        name="resilience", conn_rate=150.0, duration=duration,
        factory=FixedFactory((300e-6,)), ports=(443,),
        requests_per_conn=12, request_gap_mean=0.25,
        reconnect_on_reset=True)


def _blast_radius(injector: FaultInjector) -> float:
    """Largest per-fault fraction of in-flight connections affected."""
    worst = 0.0
    for record in injector.log:
        total = record.get("total_conns", 0)
        if not total:
            continue
        if record["event"] == "clear" and "blast" in record:
            # Crash: connections actually killed at detection time.
            worst = max(worst, record["blast"] / total)
        elif record["event"] == "fire" and "conns_at_risk" in record:
            # Hang/slow: connections pinned to the stalled worker.
            worst = max(worst, record["conns_at_risk"] / total)
    return worst


def run_resilience_cell(scenario: str, mode: NotificationMode,
                        seed: int = 7, n_workers: int = 8,
                        duration: float = 3.0,
                        settle: float = 2.0) -> ResilienceCell:
    """Run one (scenario, mode) cell on a fresh device."""
    plan = SCENARIOS[scenario]()
    env = Environment()
    registry = RngRegistry(seed)
    tracer = Tracer(env)
    server = LBServer(
        env, n_workers=n_workers, ports=[443], mode=mode,
        hash_seed=registry.stream("hash-seed").randrange(2 ** 32),
        nic=Nic(n_queues=n_workers), tracer=tracer)
    server.start()
    spec = _workload(duration)
    # Traffic derives from the cell, not the mode: all modes see identical
    # connections, so cells differ only by how the mode handles the fault.
    gen = TrafficGenerator(env, server, registry.stream("traffic"), spec)
    injector = FaultInjector(env, server, plan,
                             registry=registry.fork("faults"),
                             tracer=tracer).arm()
    gen.start()
    env.run(until=duration + settle)

    summary = server.metrics.summary()
    fires = injector.fired()
    first_fire = min((r["t"] for r in fires), default=None)
    hung = 0
    buckets: Dict[int, List[float]] = {}
    for event in tracer.events:
        if event.name != "request.complete":
            continue
        latency = event.fields.get("latency", 0.0) if event.fields else 0.0
        if latency > HUNG_THRESHOLD:
            hung += 1
        buckets.setdefault(int(event.ts / RECOVERY_BUCKET), []).append(latency)
    recovery = 0.0
    if first_fire is not None:
        from ..analysis.stats import percentile
        for index, latencies in buckets.items():
            end = (index + 1) * RECOVERY_BUCKET
            if end <= first_fire:
                continue
            if percentile(latencies, 99) > DEGRADED_P99:
                recovery = max(recovery, end - first_fire)
    return ResilienceCell(
        scenario=scenario, mode=mode.value,
        p99_ms=summary["p99_ms"], hung_requests=hung,
        blast_radius=_blast_radius(injector), recovery_time=recovery,
        completed=summary["completed"], failed=summary["failed"],
        faults_fired=injector.faults_fired)


def run_resilience_matrix(
        seed: int = 7, n_workers: int = 8,
        scenarios: Optional[Sequence[str]] = None,
        modes: Sequence[NotificationMode] = RESILIENCE_MODES,
) -> ResilienceMatrix:
    """The full matrix: every scenario against every mode."""
    names = list(scenarios) if scenarios is not None else list(SCENARIOS)
    cells = tuple(
        run_resilience_cell(name, mode, seed=seed, n_workers=n_workers)
        for name in names for mode in modes)
    return ResilienceMatrix(cells=cells, seed=seed)


def render_matrix(matrix: ResilienceMatrix) -> str:
    from ..analysis.reporting import render_table
    headers = ["Scenario", "Mode", "p99(ms)", "Hung", "Blast",
               "Recovery(s)", "Done", "Failed"]
    rows: List[List] = []
    for cell in matrix.cells:
        rows.append([
            cell.scenario, cell.mode, f"{cell.p99_ms:.2f}",
            cell.hung_requests, f"{cell.blast_radius * 100:.1f}%",
            f"{cell.recovery_time:.3f}", cell.completed, cell.failed])
    return render_table(headers, rows,
                        title="Resilience matrix (fault x mode)")
