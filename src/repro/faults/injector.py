"""The fault injector: arms a :class:`FaultPlan` against a running device.

One uniform injection path subsumes the previously ad-hoc hooks
(``Worker.inject_hang``, ``LBServer.crash_worker`` scheduled by hand, the
``sec7`` inline crash): the injector resolves each :class:`FaultSpec`
against the live stack, schedules its occurrences on the sim clock, fires
them, and clears them — emitting ``fault.arm`` / ``fault.fire`` /
``fault.clear`` events into the PR-1 tracer and keeping a structured
``log`` either way.  Crash faults additionally capture a flight-recorder
dump right after socket cleanup (the §7 post-mortem workflow) when the
tracer carries a recorder.

Determinism contract:

- An **empty plan arms nothing**: no callbacks are scheduled, no RNG
  stream is created, no state is touched.  A run with an armed empty
  injector is bit-identical to a run without one.
- All randomness (``target="random"``, ``jitter``, torn reads, NIC loss)
  draws from dedicated :class:`~repro.sim.rng.RngRegistry` streams derived
  from the plan seed, never from workload streams, so identical
  plan + seed reproduces identical results and the workload the faults
  disturb is the same traffic an unfaulted run sees.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..obs.trace import CAT_FAULT
from ..sim.engine import Environment
from ..sim.rng import RngRegistry, Stream
from .plan import FLEET_KINDS, FaultKind, FaultPlan, FaultSpec

__all__ = ["FaultInjector", "inject_hang"]


def inject_hang(worker, duration: float, tracer=None) -> None:
    """The one hang-injection primitive: block ``worker``'s next event-loop
    iteration for ``duration`` seconds of CPU.

    ``LBServer.hang_worker`` and the deprecated ``Worker.inject_hang`` shim
    both route through here, as does the injector's ``worker_hang`` kind.
    """
    if duration < 0:
        raise ValueError(f"hang duration must be >= 0, got {duration}")
    worker._forced_hang += duration
    if tracer is not None:
        tracer.instant("fault.fire", CAT_FAULT, worker=worker.worker_id,
                       kind=FaultKind.WORKER_HANG.value, duration=duration)


class FaultInjector:
    """Arms one :class:`FaultPlan` against one :class:`~repro.lb.LBServer`.

    Parameters
    ----------
    env, server:
        The simulation environment and the device under test.
    plan:
        The fault schedule.  May be empty (see the determinism contract).
    registry:
        Optional :class:`RngRegistry` for the plan's random draws; defaults
        to ``RngRegistry(plan.seed)``, created lazily on first need.
    tracer:
        Optional :class:`~repro.obs.Tracer`; defaults to the server's.
    backend:
        Optional :class:`~repro.lb.backend.BackendPool` that backend
        brownout/blackout faults act on.
    fleet:
        Optional :class:`~repro.fleet.Fleet` that fleet-scope kinds
        (``instance_crash``/``instance_drain``/``backend_churn``) act on.
        When a plan holds only fleet-scope faults, ``server`` may be None.
    """

    def __init__(self, env: Environment, server, plan: FaultPlan,
                 registry: Optional[RngRegistry] = None, tracer=None,
                 backend=None, fleet=None):
        self.env = env
        self.server = server
        self.plan = plan
        self.fleet = fleet
        if tracer is None and fleet is not None:
            tracer = fleet.tracer
        self.tracer = tracer if tracer is not None \
            else getattr(server, "tracer", None)
        self.backend = backend
        self._registry = registry
        #: Structured record of every arm/fire/clear, tracer or not.
        self.log: List[Dict[str, Any]] = []
        #: Flight-recorder dumps captured after crash cleanups.
        self.crash_dumps: List[List[dict]] = []
        self.faults_fired = 0
        self.faults_cleared = 0
        self._armed = False
        # Saved pre-fault state for restorable kinds, keyed by spec index.
        self._saved: Dict[int, Any] = {}

    # -- plumbing ---------------------------------------------------------
    def _rng(self, index: int) -> Stream:
        if self._registry is None:
            self._registry = RngRegistry(self.plan.seed)
        return self._registry.stream(f"fault:{index}")

    def _emit(self, phase: str, spec: FaultSpec, index: int,
              worker: Optional[int] = None, **fields: Any) -> None:
        record = {"event": phase, "kind": spec.kind.value, "index": index,
                  "t": self.env.now, "worker": worker}
        record.update(fields)
        self.log.append(record)
        if self.tracer is not None:
            self.tracer.instant(f"fault.{phase}", CAT_FAULT, worker=worker,
                                kind=spec.kind.value, index=index, **fields)

    def _validate(self, spec: FaultSpec) -> None:
        """Fail fast at arm time when the stack can't host the fault."""
        if spec.kind in FLEET_KINDS:
            if self.fleet is None:
                raise ValueError(f"{spec.kind.value} fault needs a fleet")
            if isinstance(spec.target, int) and not \
                    0 <= spec.target < len(self.fleet.cluster.devices):
                raise ValueError(
                    f"target instance {spec.target} out of range")
            return
        if self.server is None:
            raise ValueError(
                f"{spec.kind.value} fault needs a server (fleet-only "
                f"injector arms only fleet-scope kinds)")
        if spec.kind is FaultKind.NIC_LOSS \
                and self.server.stack.nic is None:
            raise ValueError("nic_loss fault needs a server built with a Nic")
        if spec.kind in (FaultKind.BACKEND_BROWNOUT,
                         FaultKind.BACKEND_BLACKOUT) and self.backend is None:
            raise ValueError(f"{spec.kind.value} fault needs a backend pool")
        if spec.kind in (FaultKind.WST_FREEZE, FaultKind.WST_TORN_BURST,
                         FaultKind.BITMAP_SYNC_LOSS) \
                and not getattr(self.server, "groups", None):
            raise ValueError(
                f"{spec.kind.value} fault needs HERMES mode (WST/eBPF state)")
        if isinstance(spec.target, int) \
                and not 0 <= spec.target < self.server.n_workers:
            raise ValueError(f"target worker {spec.target} out of range")
        if spec.kind is FaultKind.BACKEND_BLACKOUT \
                and not 0 <= spec.server_id < len(self.backend.servers):
            raise ValueError(f"server_id {spec.server_id} out of range")

    def arm(self) -> "FaultInjector":
        """Schedule every occurrence of every spec.  Idempotence guard:
        arming twice would double-fire, so it raises."""
        if self._armed:
            raise RuntimeError("injector already armed")
        self._armed = True
        if self.plan.empty:
            return self  # nothing scheduled, nothing drawn, nothing logged
        for index, spec in enumerate(self.plan.faults):
            self._validate(spec)
            times = list(spec.fire_times())
            if spec.jitter > 0:
                rng = self._rng(index)
                times = [max(0.0, t + rng.uniform(-spec.jitter, spec.jitter))
                         for t in times]
            self._emit("arm", spec, index, occurrences=len(times),
                       first_at=times[0])
            for occurrence, when in enumerate(times):
                delay = max(0.0, when - self.env.now)
                self.env.schedule_callback(
                    delay,
                    lambda s=spec, i=index, o=occurrence: self._fire(s, i, o))
        return self

    # -- victim resolution -------------------------------------------------
    def _resolve_worker(self, spec: FaultSpec, index: int):
        target = spec.target if spec.target is not None else "busiest"
        workers = self.server.workers
        if isinstance(target, int):
            return workers[target]
        if target == "busiest":
            return max(workers, key=lambda w: (len(w.conns), -w.worker_id))
        alive = [w for w in workers if w.is_alive] or list(workers)
        return alive[self._rng(index).randrange(len(alive))]

    def _resolve_instance(self, spec: FaultSpec, index: int) -> int:
        """Victim LB instance *index* for fleet-scope kinds."""
        target = spec.target if spec.target is not None else "busiest"
        devices = self.fleet.cluster.devices
        if isinstance(target, int):
            return target
        indexed = list(enumerate(devices))
        if target == "busiest":
            chosen = max(indexed,
                         key=lambda pair: (sum(len(w.conns)
                                               for w in pair[1].workers),
                                           -pair[0]))
            return chosen[0]
        up = [i for i, d in indexed if d.alive_workers] \
            or [i for i, _d in indexed]
        return up[self._rng(index).randrange(len(up))]

    # -- firing -----------------------------------------------------------
    def _fire(self, spec: FaultSpec, index: int, occurrence: int) -> None:
        self.faults_fired += 1
        handler = {
            FaultKind.WORKER_HANG: self._fire_hang,
            FaultKind.WORKER_CRASH: self._fire_crash,
            FaultKind.SLOW_WORKER: self._fire_slow,
            FaultKind.BACKEND_BROWNOUT: self._fire_brownout,
            FaultKind.BACKEND_BLACKOUT: self._fire_blackout,
            FaultKind.WST_FREEZE: self._fire_wst_freeze,
            FaultKind.WST_TORN_BURST: self._fire_torn_burst,
            FaultKind.BITMAP_SYNC_LOSS: self._fire_sync_loss,
            FaultKind.NIC_LOSS: self._fire_nic_loss,
            FaultKind.INSTANCE_CRASH: self._fire_instance_crash,
            FaultKind.INSTANCE_DRAIN: self._fire_instance_drain,
            FaultKind.BACKEND_CHURN: self._fire_backend_churn,
        }[spec.kind]
        handler(spec, index, occurrence)

    def _schedule_clear(self, spec: FaultSpec, index: int,
                        restore) -> None:
        def clear():
            restore()
            self.faults_cleared += 1
            self._emit("clear", spec, index)

        self.env.schedule_callback(spec.duration, clear)

    def _blast_stats(self, worker) -> Dict[str, int]:
        # Client connections only: probe streams (negative tenant ids) die
        # with the worker but are re-pinned by their prober, so they are
        # not part of the blast radius.
        #
        # Blast radius is *affected connections*, not owned connections:
        # a spliced flow (``conn.splice``, repro.splice) is forwarded
        # kernel-side and keeps completing while its worker's wakeup path
        # is stalled, so wakeup-centric faults (hang / slow / crash until
        # detection) do not put it at risk.  Modes without a splice path
        # have no spliced connections, so their accounting is unchanged.
        def clients(w) -> int:
            return sum(1 for conn in w.conns.values()
                       if conn.tenant_id >= 0)

        def wakeup_dependent(w) -> int:
            return sum(1 for conn in w.conns.values()
                       if conn.tenant_id >= 0 and conn.splice is None)

        return {"conns_at_risk": wakeup_dependent(worker),
                "total_conns": sum(clients(w)
                                   for w in self.server.workers)}

    def _fire_hang(self, spec: FaultSpec, index: int,
                   occurrence: int) -> None:
        worker = self._resolve_worker(spec, index)
        inject_hang(worker, spec.duration)
        self._emit("fire", spec, index, worker=worker.worker_id,
                   occurrence=occurrence, duration=spec.duration,
                   **self._blast_stats(worker))

    def _fire_crash(self, spec: FaultSpec, index: int,
                    occurrence: int) -> None:
        worker = self._resolve_worker(spec, index)
        if not worker.is_alive:
            self._emit("fire", spec, index, worker=worker.worker_id,
                       occurrence=occurrence, skipped="already crashed")
            return
        wid = worker.worker_id
        stats = self._blast_stats(worker)
        # Crash without scheduling cleanup here: detection is ours so the
        # blast radius lands in the log (and the flight dump fires then).
        self.server.crash_worker(wid, cleanup_delay=None)
        self._emit("fire", spec, index, worker=wid, occurrence=occurrence,
                   detect_delay=spec.detect_delay, **stats)
        if spec.detect_delay is None:
            return

        def detect():
            blast = self.server.detect_and_clean_worker(wid)
            recorder = getattr(self.tracer, "recorder", None)
            if recorder is not None:
                self.crash_dumps.append(recorder.dump())
            self.faults_cleared += 1
            self._emit("clear", spec, index, worker=wid, blast=blast,
                       total_conns=stats["total_conns"],
                       flight_dumped=recorder is not None)

        self.env.schedule_callback(spec.detect_delay, detect)
        if spec.restart_after is not None:
            self.env.schedule_callback(
                spec.restart_after,
                lambda: self._restart(spec, index, wid))

    def _restart(self, spec: FaultSpec, index: int, wid: int) -> None:
        self.server.restart_worker(wid)
        self._emit("restart", spec, index, worker=wid)

    def _fire_slow(self, spec: FaultSpec, index: int,
                   occurrence: int) -> None:
        worker = self._resolve_worker(spec, index)
        worker.service_multiplier = spec.magnitude
        self._emit("fire", spec, index, worker=worker.worker_id,
                   occurrence=occurrence, multiplier=spec.magnitude,
                   duration=spec.duration, **self._blast_stats(worker))

        def restore():
            worker.service_multiplier = 1.0

        self._schedule_clear(spec, index, restore)

    def _fire_brownout(self, spec: FaultSpec, index: int,
                       occurrence: int) -> None:
        self.backend.set_brownout(spec.magnitude)
        self._emit("fire", spec, index, occurrence=occurrence,
                   multiplier=spec.magnitude, duration=spec.duration)
        self._schedule_clear(spec, index,
                             lambda: self.backend.set_brownout(1.0))

    def _fire_blackout(self, spec: FaultSpec, index: int,
                       occurrence: int) -> None:
        self.backend.set_server_down(spec.server_id, True)
        self._emit("fire", spec, index, occurrence=occurrence,
                   server_id=spec.server_id, duration=spec.duration)
        self._schedule_clear(
            spec, index,
            lambda: self.backend.set_server_down(spec.server_id, False))

    def _fire_wst_freeze(self, spec: FaultSpec, index: int,
                         occurrence: int) -> None:
        worker = self._resolve_worker(spec, index)
        binding = worker.hermes
        binding.group.wst.freeze(binding.rank)
        self._emit("fire", spec, index, worker=worker.worker_id,
                   occurrence=occurrence, duration=spec.duration)
        self._schedule_clear(
            spec, index, lambda: binding.group.wst.unfreeze(binding.rank))

    def _fire_torn_burst(self, spec: FaultSpec, index: int,
                         occurrence: int) -> None:
        rng = self._rng(index)
        saved = [(g.wst.atomic, g.wst.torn_read_prob, g.wst._rng)
                 for g in self.server.groups]
        self._saved[index] = saved
        for group in self.server.groups:
            group.wst.atomic = False
            group.wst.torn_read_prob = spec.magnitude
            group.wst._rng = rng
        self._emit("fire", spec, index, occurrence=occurrence,
                   torn_read_prob=spec.magnitude, duration=spec.duration)

        def restore():
            for group, (atomic, prob, old_rng) in zip(
                    self.server.groups, self._saved.pop(index)):
                group.wst.atomic = atomic
                group.wst.torn_read_prob = prob
                group.wst._rng = old_rng

        self._schedule_clear(spec, index, restore)

    def _fire_sync_loss(self, spec: FaultSpec, index: int,
                        occurrence: int) -> None:
        for group in self.server.groups:
            group.scheduler.sync_enabled = False
        self._emit("fire", spec, index, occurrence=occurrence,
                   duration=spec.duration)

        def restore():
            for group in self.server.groups:
                group.scheduler.sync_enabled = True

        self._schedule_clear(spec, index, restore)

    def _fire_nic_loss(self, spec: FaultSpec, index: int,
                       occurrence: int) -> None:
        nic = self.server.stack.nic
        nic.set_loss(spec.magnitude, self._rng(index))
        self._emit("fire", spec, index, occurrence=occurrence,
                   loss_prob=spec.magnitude, duration=spec.duration)
        self._schedule_clear(spec, index, lambda: nic.set_loss(0.0))

    # -- fleet-scope kinds -------------------------------------------------
    def _fire_instance_crash(self, spec: FaultSpec, index: int,
                             occurrence: int) -> None:
        fleet = self.fleet
        victim = self._resolve_instance(spec, index)
        instance = fleet.cluster.devices[victim]
        if not instance.alive_workers:
            self._emit("fire", spec, index, instance=instance.name,
                       occurrence=occurrence, skipped="already down")
            return
        detect_delay = (spec.detect_delay if spec.detect_delay is not None
                        else 0.005)
        conns = sum(len(w.conns) for w in instance.workers)
        migrated_before = fleet.migrated
        broken_before = fleet.broken_instance
        # The fleet schedules its own detection callback first, so at the
        # detection timestamp it has already run (callbacks are FIFO) and
        # the clear record below sees the settled migrate/break counts.
        fleet.crash_instance(victim, detect_delay=detect_delay)
        self._emit("fire", spec, index, instance=instance.name,
                   occurrence=occurrence, detect_delay=detect_delay,
                   conns_at_risk=conns)

        def clear():
            recorder = getattr(self.tracer, "recorder", None)
            if recorder is not None:
                self.crash_dumps.append(recorder.dump())
            self.faults_cleared += 1
            self._emit("clear", spec, index, instance=instance.name,
                       migrated=fleet.migrated - migrated_before,
                       broken=fleet.broken_instance - broken_before,
                       flight_dumped=recorder is not None)

        self.env.schedule_callback(detect_delay, clear)

    def _fire_instance_drain(self, spec: FaultSpec, index: int,
                             occurrence: int) -> None:
        victim = self._resolve_instance(spec, index)
        instance = self.fleet.cluster.devices[victim]
        if self.fleet.cluster.is_draining(instance):
            self._emit("fire", spec, index, instance=instance.name,
                       occurrence=occurrence, skipped="already draining")
            return
        self.fleet.drain_instance(victim)
        self._emit("fire", spec, index, instance=instance.name,
                   occurrence=occurrence)

    def _fire_backend_churn(self, spec: FaultSpec, index: int,
                            occurrence: int) -> None:
        k = int(spec.magnitude)
        broken = self.fleet.churn_backends(k)
        self._emit("fire", spec, index, occurrence=occurrence, churn=k,
                   broken=broken, version=self.fleet.backend_map.version)

    # -- introspection -----------------------------------------------------
    def fired(self, kind: Optional[FaultKind] = None) -> List[Dict[str, Any]]:
        """Fire records, optionally filtered by kind."""
        return [r for r in self.log if r["event"] == "fire"
                and (kind is None or r["kind"] == kind.value)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<FaultInjector specs={len(self.plan)} "
                f"fired={self.faults_fired} armed={self._armed}>")
