"""Deterministic fault injection and the resilience matrix.

Hermes exists because of failures: hung workers turned 30 ms requests into
440 s stalls (§2, Appendix C), and one worker crash killed >70% of a
device's connections (§7).  This package turns those pathologies — and the
wider failure surface of an eBPF-assisted L7 LB — into declarative,
replayable experiments:

- :mod:`repro.faults.plan` — :class:`FaultPlan` / :class:`FaultSpec`: a
  JSON-serializable schedule of timed faults (hang trains, crashes with
  detection windows and restarts, slow workers, backend brownouts and
  blackouts, WST timestamp freezes and torn-read bursts, eBPF bitmap sync
  loss, NIC loss bursts).
- :mod:`repro.faults.injector` — :class:`FaultInjector`: arms a plan
  against a running :class:`~repro.lb.LBServer` through one uniform API,
  emitting ``fault.arm/fire/clear`` into the observability tracer and
  capturing flight-recorder dumps on crashes.
- :mod:`repro.faults.resilience` — the fault × notification-mode matrix
  (p99, hung requests, blast radius, recovery time) with the paper's
  incidents as named scenarios.

The determinism contract: an empty plan arms nothing (bit-identical to no
injector), and identical plan + seed reproduces identical results.
"""

from .injector import FaultInjector, inject_hang
from .plan import FaultKind, FaultPlan, FaultSpec
from .resilience import (
    RESILIENCE_MODES,
    SCENARIOS,
    ResilienceCell,
    ResilienceMatrix,
    render_matrix,
    run_resilience_cell,
    run_resilience_matrix,
)

__all__ = [
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "RESILIENCE_MODES",
    "ResilienceCell",
    "ResilienceMatrix",
    "SCENARIOS",
    "inject_hang",
    "render_matrix",
    "run_resilience_cell",
    "run_resilience_matrix",
]
