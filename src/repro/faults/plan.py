"""Declarative fault plans — the "what, when, to whom" of an experiment.

A :class:`FaultPlan` is a JSON-serializable list of timed :class:`FaultSpec`
entries describing *every* failure class the paper's evaluation touches:

- ``worker_hang`` — one worker's event loop blocks (GC pause, heavy
  edge-triggered drain); ``count``/``period`` turn a single hang into a
  hang train (repeated GC-pause bursts).
- ``worker_crash`` — the §7 incident: a worker process dies, its sockets
  linger until failure detection (``detect_delay``), and it optionally
  comes back ``restart_after`` seconds after the crash.
- ``slow_worker`` — one worker's userspace service time is multiplied by
  ``magnitude`` for ``duration`` (thermal throttling, noisy neighbour).
- ``backend_brownout`` / ``backend_blackout`` — the upstream pool degrades
  (handshake cost × ``magnitude``) or one backend goes dark entirely.
- ``wst_freeze`` — one worker's WST loop-entry timestamp stops advancing
  (a stuck time source / dead publisher): the paper's staleness filter is
  what must catch it.
- ``wst_torn_burst`` — the WST temporarily loses per-cell atomicity and
  serves torn 32-bit halves with probability ``magnitude`` (§5.3.1's
  atomicity argument, as a runtime fault).
- ``bitmap_sync_loss`` — userspace stops pushing the selection bitmap to
  the kernel map: the eBPF program runs on a stale worker set (the shared
  failure surface with XLB-style eBPF datapaths).
- ``nic_loss`` — the NIC drops arriving SYNs/data with probability
  ``magnitude`` for ``duration`` (loss burst).
- ``instance_crash`` / ``instance_drain`` — fleet-scope faults
  (``repro.fleet``): a whole LB instance dies (every worker at once, with
  a ``detect_delay`` failure-detection window) or is taken out of
  new-connection rotation.  ``target`` selects the instance the same way
  worker faults select a worker (index, ``"busiest"``, ``"random"``).
- ``backend_churn`` — the fleet's backend set rolls: ``magnitude``
  backends retire and as many fresh ones join, publishing a new
  version-stamped backend mapping (the PCC stress scenario).

Plans are deterministic: every randomized choice (``target="random"``,
``jitter``) draws from a named :class:`~repro.sim.rng.RngRegistry` stream
derived from the plan's ``seed``, so the same JSON + seed always reproduces
the same fault sequence.  An **empty plan arms nothing** — the injector
schedules no callbacks and draws no random numbers, leaving the simulation
bit-identical to a run without an injector.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from enum import Enum
from typing import Iterator, Optional, Tuple, Union

__all__ = ["FaultKind", "FaultSpec", "FaultPlan"]


class FaultKind(Enum):
    WORKER_HANG = "worker_hang"
    WORKER_CRASH = "worker_crash"
    SLOW_WORKER = "slow_worker"
    BACKEND_BROWNOUT = "backend_brownout"
    BACKEND_BLACKOUT = "backend_blackout"
    WST_FREEZE = "wst_freeze"
    WST_TORN_BURST = "wst_torn_burst"
    BITMAP_SYNC_LOSS = "bitmap_sync_loss"
    NIC_LOSS = "nic_loss"
    INSTANCE_CRASH = "instance_crash"
    INSTANCE_DRAIN = "instance_drain"
    BACKEND_CHURN = "backend_churn"


#: Kinds that act on one victim worker (and therefore accept ``target``).
WORKER_KINDS = frozenset({
    FaultKind.WORKER_HANG, FaultKind.WORKER_CRASH, FaultKind.SLOW_WORKER,
    FaultKind.WST_FREEZE,
})

#: Fleet-scope kinds that act on one victim LB instance.
INSTANCE_KINDS = frozenset({
    FaultKind.INSTANCE_CRASH, FaultKind.INSTANCE_DRAIN,
})

#: Kinds that need an armed :class:`~repro.fleet.Fleet` to act on.
FLEET_KINDS = INSTANCE_KINDS | frozenset({FaultKind.BACKEND_CHURN})

#: Kinds whose ``magnitude`` is a probability in [0, 1].
PROBABILITY_KINDS = frozenset({FaultKind.WST_TORN_BURST, FaultKind.NIC_LOSS})

#: Kinds with a failure-detection window (accept ``detect_delay``).
CRASH_KINDS = frozenset({FaultKind.WORKER_CRASH, FaultKind.INSTANCE_CRASH})

#: Kinds that address one backend server (accept ``server_id``).
BACKEND_POOL_KINDS = frozenset({
    FaultKind.BACKEND_BROWNOUT, FaultKind.BACKEND_BLACKOUT,
})

#: Kinds that pick a single victim (accept ``target``).
TARGETED_KINDS = WORKER_KINDS | INSTANCE_KINDS


@dataclass(frozen=True)
class FaultSpec:
    """One timed fault.

    ``target`` selects the victim for worker-scoped kinds: an explicit
    worker id, ``"busiest"`` (most connections at fire time, lowest id on
    ties), or ``"random"`` (drawn from the plan's RNG stream among alive
    workers).  ``magnitude`` is kind-specific: a service/handshake
    multiplier for ``slow_worker``/``backend_brownout``, a probability for
    ``wst_torn_burst``/``nic_loss``.
    """

    kind: FaultKind
    #: Sim time of the (first) occurrence.
    at: float
    #: How long the fault stays active; 0 = instantaneous (hang, crash).
    duration: float = 0.0
    target: Union[int, str, None] = None
    magnitude: float = 1.0
    #: Occurrences (a hang/GC-pause train fires ``count`` times).
    count: int = 1
    #: Gap between train occurrences.
    period: float = 0.0
    #: Crash only: failure-detection delay before socket cleanup.
    detect_delay: Optional[float] = None
    #: Crash only: restart the worker this long after the crash fired
    #: (requires ``detect_delay`` and must not precede it).
    restart_after: Optional[float] = None
    #: Backend faults: which server (required for blackout; None = whole
    #: pool for brownout).
    server_id: Optional[int] = None
    #: Uniform ±jitter applied to each occurrence time (seeded stream).
    jitter: float = 0.0

    def __post_init__(self):
        if not isinstance(self.kind, FaultKind):
            object.__setattr__(self, "kind", FaultKind(self.kind))
        if self.at < 0:
            raise ValueError(f"fault time must be >= 0, got {self.at}")
        if self.duration < 0:
            raise ValueError("duration must be >= 0")
        if self.count < 1:
            raise ValueError("count must be >= 1")
        if self.period < 0 or self.jitter < 0:
            raise ValueError("period and jitter must be >= 0")
        if self.count > 1 and self.period <= 0:
            raise ValueError("a fault train (count > 1) needs period > 0")
        if self.target is not None and self.kind not in TARGETED_KINDS:
            raise ValueError(
                f"{self.kind.value} does not take a target "
                f"(only worker/instance-scoped kinds do)")
        if self.target is not None and not isinstance(self.target, int) \
                and self.target not in ("busiest", "random"):
            raise ValueError(
                f"target must be a worker id, 'busiest' or 'random', "
                f"got {self.target!r}")
        if self.kind in PROBABILITY_KINDS and not 0 <= self.magnitude <= 1:
            raise ValueError(
                f"{self.kind.value} magnitude is a probability, "
                f"got {self.magnitude}")
        if self.kind not in PROBABILITY_KINDS and self.magnitude < 0:
            raise ValueError("magnitude must be >= 0")
        if self.restart_after is not None:
            if self.kind is not FaultKind.WORKER_CRASH:
                raise ValueError("restart_after only applies to crashes")
            if self.detect_delay is None:
                raise ValueError("restart_after requires detect_delay "
                                 "(cleanup precedes restart)")
            if self.restart_after < self.detect_delay:
                raise ValueError("restart_after must be >= detect_delay")
        if self.detect_delay is not None:
            if self.kind not in CRASH_KINDS:
                raise ValueError(
                    f"detect_delay only applies to crash kinds, "
                    f"not {self.kind.value}")
            if self.detect_delay < 0:
                raise ValueError("detect_delay must be >= 0")
        if self.server_id is not None and self.kind not in BACKEND_POOL_KINDS:
            raise ValueError(
                f"server_id only applies to backend faults, "
                f"not {self.kind.value}")
        if self.kind is FaultKind.BACKEND_BLACKOUT and self.server_id is None:
            raise ValueError("backend_blackout needs a server_id")
        if self.kind is FaultKind.BACKEND_CHURN and self.magnitude < 1:
            raise ValueError(
                "backend_churn magnitude is the churn size, must be >= 1")

    @property
    def needs_rng(self) -> bool:
        """True when firing this spec draws from the plan's RNG stream."""
        return self.target == "random" or self.jitter > 0

    def fire_times(self) -> Tuple[float, ...]:
        """Nominal occurrence times (before jitter)."""
        return tuple(self.at + i * self.period for i in range(self.count))

    def to_dict(self) -> dict:
        data = asdict(self)
        data["kind"] = self.kind.value
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        known = dict(data)
        kind = known.pop("kind")
        return cls(kind=FaultKind(kind), **known)


@dataclass(frozen=True)
class FaultPlan:
    """A full, serializable fault schedule plus its randomness seed."""

    faults: Tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self):
        object.__setattr__(self, "faults", tuple(self.faults))

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self) -> Iterator[FaultSpec]:
        return iter(self.faults)

    @property
    def empty(self) -> bool:
        return not self.faults

    # -- serialization ----------------------------------------------------
    def to_dict(self) -> dict:
        return {"seed": self.seed,
                "faults": [spec.to_dict() for spec in self.faults]}

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        return cls(faults=tuple(FaultSpec.from_dict(f)
                                for f in data.get("faults", ())),
                   seed=int(data.get("seed", 0)))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))

    def save(self, path: str, indent: int = 2) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json(indent=indent))
            fh.write("\n")
