"""repro.fleet — an LB fleet behind an ingress tier (cluster-of-clusters).

The production shape of §6: an L4/ECMP ingress spraying flows over N
full LB instances, with connection -> backend resolution as a pluggable
policy (stateful table vs Concury-style stateless version-stamped
lookup) and per-connection consistency (PCC) as the correctness bar
under instance failover and backend churn.
"""

from .fleet import Fleet, FlowRecord, aggregate_metrics, build_fleet
from .ingress import (INGRESS_POLICIES, ConsistentHashRing, EcmpIngress,
                      make_ingress)
from .lookup import (BackendMap, FleetPolicy, StatefulLookup,
                     StatelessLookup, make_lookup)

__all__ = [
    "Fleet",
    "FlowRecord",
    "aggregate_metrics",
    "build_fleet",
    "EcmpIngress",
    "ConsistentHashRing",
    "make_ingress",
    "INGRESS_POLICIES",
    "BackendMap",
    "FleetPolicy",
    "StatefulLookup",
    "StatelessLookup",
    "make_lookup",
]
