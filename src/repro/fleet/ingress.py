"""Ingress tier: how flows reach an LB instance (§6.1, scaled out).

Production L7 fleets sit behind an L4/ECMP tier that steers each flow to
one of N LB instances by hashing the packet 5-tuple.  Two policies are
modelled, both fully deterministic under a fixed ``hash_seed``:

- :class:`EcmpIngress` — router-style ECMP: ``hash(4-tuple) mod N`` via the
  kernel's ``reciprocal_scale``, exactly the spray the single-tier
  :class:`~repro.cluster.LBCluster` has always used.  Cheap and stateless,
  but shrinking or growing the active set remaps ~``(N-1)/N`` of the flow
  space (every slot boundary moves).
- :class:`ConsistentHashRing` — a vnode ring (à la Karger/Maglev-family
  consistent hashing): each instance owns ``vnodes`` pseudo-random points
  on a 32-bit ring; a flow maps to the first point clockwise of its hash.
  Membership changes remap only the keys adjacent to the joining/leaving
  instance's points (≈ ``K/N`` of the keyspace).  With ``load_factor``
  set, the ring becomes *bounded-load* consistent hashing (CH-BL): an
  instance already at ``ceil(load_factor * total / N)`` connections is
  skipped and the flow walks clockwise to the next underloaded instance.

Both expose ``pick(four_tuple, active)``; instances are any objects with a
stable ``name`` attribute (ring point derivation) — in practice
:class:`~repro.lb.server.LBServer` devices.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Callable, List, Optional, Sequence, Tuple

from ..kernel.hash import FourTuple, jhash_4tuple, jhash_words

__all__ = ["EcmpIngress", "ConsistentHashRing", "make_ingress",
           "INGRESS_POLICIES"]

#: Ingress policy spellings accepted by :func:`make_ingress` and the CLI.
INGRESS_POLICIES = ("ecmp", "ring", "ring_bounded")


def _name_words(name: str) -> List[int]:
    """Pack an instance name into 32-bit words for jhash (utf-8, padded)."""
    data = name.encode("utf-8")
    words = []
    for offset in range(0, len(data), 4):
        chunk = data[offset:offset + 4]
        words.append(int.from_bytes(chunk.ljust(4, b"\0"), "little"))
    return words or [0]


class EcmpIngress:
    """Router-style ECMP: flow-hash modulo the active instance count.

    This is byte-for-byte the historical :class:`~repro.cluster.LBCluster`
    spray — ``active[reciprocal_scale(jhash_4tuple(ft, seed), len(active))]``
    — factored out so cluster and fleet share one implementation.
    """

    name = "ecmp"

    def __init__(self, hash_seed: int = 0x5eed):
        self.hash_seed = hash_seed

    def pick(self, four_tuple: FourTuple, active: Sequence) -> object:
        """Select the owning instance for a new flow."""
        from ..kernel.hash import reciprocal_scale
        flow_hash = jhash_4tuple(four_tuple, self.hash_seed)
        return active[reciprocal_scale(flow_hash, len(active))]


class ConsistentHashRing:
    """Consistent-hash ring with vnodes and an optional bounded-load walk.

    ``load_factor=None`` gives the plain ring; a float > 1 arms CH-BL:
    the clockwise walk skips instances whose load (``load_of(instance)``,
    default: live worker connection count) has reached
    ``ceil(load_factor * (total_load + 1) / len(active))``.
    """

    def __init__(self, hash_seed: int = 0x5eed, vnodes: int = 64,
                 load_factor: Optional[float] = None,
                 load_of: Optional[Callable[[object], int]] = None):
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        if load_factor is not None and load_factor <= 1.0:
            raise ValueError("load_factor must be > 1 (or None)")
        self.hash_seed = hash_seed
        self.vnodes = vnodes
        self.load_factor = load_factor
        self.load_of = load_of if load_of is not None else _worker_conn_load
        self.name = "ring" if load_factor is None else "ring_bounded"
        #: membership key -> (sorted point list, instance list per point).
        self._rings: dict = {}

    # -- ring construction -------------------------------------------------
    def points_for(self, instance_name: str) -> List[int]:
        """The vnode points one instance owns (deterministic in the seed)."""
        words = _name_words(instance_name)
        return [jhash_words(words + [replica], self.hash_seed)
                for replica in range(self.vnodes)]

    def _ring_for(self, active: Sequence) -> Tuple[List[int], List[object]]:
        key = tuple(getattr(inst, "name", str(index))
                    for index, inst in enumerate(active))
        cached = self._rings.get(key)
        if cached is not None:
            return cached
        pairs = []
        for index, inst in enumerate(active):
            for point in self.points_for(key[index]):
                # Tie-break equal points by membership order so the ring
                # is fully determined by (seed, membership sequence).
                pairs.append((point, index))
        pairs.sort()
        points = [point for point, _index in pairs]
        owners = [active[index] for _point, index in pairs]
        ring = (points, owners)
        self._rings[key] = ring
        return ring

    # -- selection ---------------------------------------------------------
    def pick(self, four_tuple: FourTuple, active: Sequence) -> object:
        """First instance clockwise of the flow hash (bounded-load aware)."""
        if len(active) == 1:
            return active[0]
        points, owners = self._ring_for(active)
        flow_hash = jhash_4tuple(four_tuple, self.hash_seed)
        start = bisect_right(points, flow_hash) % len(points)
        if self.load_factor is None:
            return owners[start]
        capacity = self._capacity(active)
        seen = 0
        index = start
        while seen < len(points):
            candidate = owners[index]
            if self.load_of(candidate) < capacity:
                return candidate
            index = (index + 1) % len(points)
            seen += 1
        # Every instance at capacity: fall back to the plain ring owner.
        return owners[start]

    def _capacity(self, active: Sequence) -> int:
        total = 0
        for inst in active:
            total += self.load_of(inst)
        return max(1, math.ceil(self.load_factor * (total + 1) / len(active)))


def _worker_conn_load(instance) -> int:
    """Default CH-BL load signal: live connections across the workers."""
    total = 0
    for worker in instance.workers:
        total += len(worker.conns)
    return total


def make_ingress(policy: str, hash_seed: int = 0x5eed, vnodes: int = 64,
                 load_factor: float = 1.25):
    """Build an ingress policy from its CLI spelling."""
    if policy == "ecmp":
        return EcmpIngress(hash_seed)
    if policy == "ring":
        return ConsistentHashRing(hash_seed, vnodes=vnodes)
    if policy == "ring_bounded":
        return ConsistentHashRing(hash_seed, vnodes=vnodes,
                                  load_factor=load_factor)
    raise ValueError(f"unknown ingress policy {policy!r}; "
                     f"choose from {', '.join(INGRESS_POLICIES)}")
