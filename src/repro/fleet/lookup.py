"""Connection-to-backend lookup policies: stateful vs Concury-stateless.

Once the ingress tier lands a flow on an LB instance, the L7 layer must
remember which *backend* serves the connection for its whole life — the
per-connection-consistency (PCC) requirement.  Two policies from the
literature (PAPERS.md) are modelled head-to-head:

- :class:`StatefulLookup` — the classic per-instance connection table
  (the Technion LB-scalability paper's "stateful" point): O(1) dict hit
  on every packet, but the table dies with its instance, so an instance
  failover breaks every connection it carried.
- :class:`StatelessLookup` — Concury-style: **no per-connection state at
  all**.  The backend is a pure function of the flow hash and a
  *version-stamped* backend mapping (:class:`BackendMap`).  The only
  per-connection datum is the version stamp the connection was born
  under — in Concury that stamp rides in the packet (encoded in the
  timestamp option); here it rides in the fleet's flow record.  Any
  instance can recompute the backend from (flow hash, version), so the
  mapping survives instance failover by construction.

Design deltas vs Concury proper: Concury packs its stateless mapping
into a compact DCW (dynamic "othello" hashing) structure sized for a
P4/ASIC dataplane; here the per-version table is a plain rendezvous-hash
slot array — same O(1) lookup and same versioning semantics, without the
bit-packing that only matters at line rate.  Version history is kept in
full (a real deployment would garbage-collect versions older than the
oldest live connection).
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, List, Optional, Sequence, Tuple

from ..kernel.hash import FourTuple, jhash_4tuple, jhash_words, reciprocal_scale

__all__ = ["FleetPolicy", "BackendMap", "StatefulLookup", "StatelessLookup",
           "make_lookup"]


class FleetPolicy(Enum):
    """How an LB instance resolves connection -> backend."""

    STATEFUL = "stateful"
    STATELESS = "stateless"


class BackendMap:
    """Version-stamped slot -> backend mapping shared by the whole fleet.

    Each version is a table of ``n_slots`` entries; slot ``s`` is owned by
    the backend with the highest rendezvous hash ``jhash(s, backend)``
    (HRW), so adding or removing one backend moves only the slots it
    wins or loses — minimal disruption, fully deterministic in the seed.
    ``update`` publishes a new version; old versions stay readable so
    connections stamped under them keep resolving to their birth backend.
    """

    def __init__(self, backends: Sequence[int], n_slots: int = 128,
                 hash_seed: int = 0x5eed):
        if not backends:
            raise ValueError("need at least one backend")
        if n_slots < 1:
            raise ValueError("n_slots must be >= 1")
        self.n_slots = n_slots
        self.hash_seed = hash_seed
        self._backends: List[int] = list(backends)
        self._tables: List[List[int]] = [self._build(self._backends)]

    def _build(self, backends: Sequence[int]) -> List[int]:
        table = []
        for slot in range(self.n_slots):
            owner = backends[0]
            best = -1
            for backend in backends:
                weight = jhash_words([slot, backend], self.hash_seed)
                if weight > best:
                    best = weight
                    owner = backend
            table.append(owner)
        return table

    @property
    def version(self) -> int:
        """The current (latest) mapping version."""
        return len(self._tables) - 1

    @property
    def backends(self) -> List[int]:
        """The backend set of the current version."""
        return list(self._backends)

    def update(self, backends: Sequence[int]) -> int:
        """Publish a new backend set; returns the new version stamp."""
        if not backends:
            raise ValueError("need at least one backend")
        self._backends = list(backends)
        self._tables.append(self._build(self._backends))
        return self.version

    def backend_for(self, flow_hash: int, version: Optional[int] = None) -> int:
        """Resolve a flow hash under a version (default: current)."""
        if version is None:
            version = self.version
        table = self._tables[version]
        return table[reciprocal_scale(flow_hash, self.n_slots)]

    def slot_of(self, flow_hash: int) -> int:
        return reciprocal_scale(flow_hash, self.n_slots)


class StatelessLookup:
    """Concury-style: backend = f(flow hash, version stamp).  No table.

    ``assign`` computes the (backend, version) pair a fresh connection is
    stamped with; ``resolve`` recomputes it from scratch — any instance,
    including one that never saw the connection before, gets the same
    answer, which is exactly why the policy survives instance failover.
    """

    stateless = True

    def __init__(self, backend_map: BackendMap, hash_seed: int = 0x5eed):
        self.backend_map = backend_map
        self.hash_seed = hash_seed

    def flow_hash(self, four_tuple: FourTuple) -> int:
        return jhash_4tuple(four_tuple, self.hash_seed)

    def assign(self, four_tuple: FourTuple, instance_name: str,
               conn_id: int) -> Tuple[int, int]:
        version = self.backend_map.version
        backend = self.backend_map.backend_for(self.flow_hash(four_tuple),
                                               version)
        return backend, version

    def resolve(self, four_tuple: FourTuple, instance_name: str,
                conn_id: int, version: int) -> Optional[int]:
        return self.backend_map.backend_for(self.flow_hash(four_tuple),
                                            version)

    def drop_instance(self, instance_name: str) -> int:
        """An instance died: nothing to lose.  Returns entries lost (0)."""
        return 0

    def migrate(self, conn_id: int, old_instance: str,
                new_instance: str) -> None:
        """Adoption needs no state transfer under the stateless policy."""


class StatefulLookup:
    """Per-instance connection table (the classic stateful design).

    Assignment uses the *same* rendezvous computation as the stateless
    policy — so latency distributions are directly comparable — but the
    (backend, version) pair is then remembered in a table keyed by the
    owning instance.  ``drop_instance`` models the failover cost: the
    table is gone, and with it every mapping it held.
    """

    stateless = False

    def __init__(self, backend_map: BackendMap, hash_seed: int = 0x5eed):
        self.backend_map = backend_map
        self.hash_seed = hash_seed
        #: instance name -> {conn id -> (backend, version)}.
        self._tables: Dict[str, Dict[int, Tuple[int, int]]] = {}
        self.entries_lost = 0

    def flow_hash(self, four_tuple: FourTuple) -> int:
        return jhash_4tuple(four_tuple, self.hash_seed)

    def assign(self, four_tuple: FourTuple, instance_name: str,
               conn_id: int) -> Tuple[int, int]:
        version = self.backend_map.version
        backend = self.backend_map.backend_for(self.flow_hash(four_tuple),
                                               version)
        table = self._tables.setdefault(instance_name, {})
        table[conn_id] = (backend, version)
        return backend, version

    def resolve(self, four_tuple: FourTuple, instance_name: str,
                conn_id: int, version: int) -> Optional[int]:
        table = self._tables.get(instance_name)
        if table is None:
            return None
        entry = table.get(conn_id)
        if entry is None:
            return None
        return entry[0]

    def drop_instance(self, instance_name: str) -> int:
        """The instance's table dies with it; returns entries lost."""
        table = self._tables.pop(instance_name, None)
        lost = len(table) if table is not None else 0
        self.entries_lost += lost
        return lost

    def forget(self, instance_name: str, conn_id: int) -> None:
        table = self._tables.get(instance_name)
        if table is not None:
            table.pop(conn_id, None)

    def migrate(self, conn_id: int, old_instance: str,
                new_instance: str) -> None:
        """Move one table entry (drain-style handoff, not crash)."""
        table = self._tables.get(old_instance)
        if table is None:
            return
        entry = table.pop(conn_id, None)
        if entry is not None:
            self._tables.setdefault(new_instance, {})[conn_id] = entry

    def table_size(self, instance_name: str) -> int:
        table = self._tables.get(instance_name)
        return len(table) if table is not None else 0


def make_lookup(policy, backend_map: BackendMap, hash_seed: int = 0x5eed):
    """Build a lookup from a :class:`FleetPolicy` (or its string value)."""
    if isinstance(policy, str):
        policy = FleetPolicy(policy)
    if policy is FleetPolicy.STATELESS:
        return StatelessLookup(backend_map, hash_seed)
    return StatefulLookup(backend_map, hash_seed)
