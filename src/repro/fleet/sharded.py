"""Process-sharded fleet execution: one LB instance per shard.

The unsharded :class:`~repro.fleet.Fleet` simulates every instance inside
one event loop — fine for 8 instances, hopeless for 64+.  This module
exploits what the ingress tier already guarantees: **instances do not
talk to each other**.  A flow is steered to exactly one instance by a
pure function of its 4-tuple (ECMP / consistent hashing), backend churn
is a deterministic global rule, and the stateless lookup tier recomputes
``backend_for(flow_hash, version)`` from shared constants.  So instance
``i``'s entire simulation is reproducible from the seed alone — no
cross-shard messages — and a fleet of N instances can run as N
independent single-instance simulations whose outputs merge
deterministically.

How determinism is kept byte-identical across ``--jobs N``:

- Every shard replays the *same* seeded arrival stream
  (``RngRegistry(seed).stream("traffic")``) and draws, for every arrival
  in the fleet: the inter-arrival gap, the port pick, the 4-tuple, and a
  fresh per-connection seed.  It then evaluates the global ingress
  function over lightweight name proxies and *simulates only the
  arrivals it owns* — foreign arrivals are discarded after the identical
  draws, so the stream stays in lockstep everywhere.
- Per-connection client behaviour (request payloads, think-time gaps)
  draws from a private ``Stream(conn_seed)``, so simulating or skipping
  a connection consumes nothing from the shared stream.
- Merging reuses the slot-indexed collection + enumeration-order merge
  pattern ``repro.sweep`` proved byte-identical: shard results land in
  a list indexed by shard id, and all reductions (pooled latency
  samples, summed counters, PCC verdicts, trace events) run in that
  fixed order regardless of completion order or worker count.

Not supported sharded (refused loudly rather than silently wrong):
instance crashes (cross-shard failover migrates connections between
instances), bounded-load ring ingress (the pick depends on live remote
load), and client reconnect-on-reset (the retry would need to re-enter
the global arrival stream).
"""

from __future__ import annotations

import itertools
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Dict, List, Optional, Sequence

from ..kernel.hash import FourTuple, jhash_words
from ..kernel.tcp import Connection, ConnState
from ..sim.engine import Environment
from ..sim.monitor import Samples
from ..sim.rng import RngRegistry, Stream
from .fleet import Fleet, FleetPolicy
from .ingress import make_ingress

__all__ = ["ShardIngress", "run_shard", "run_sharded_fleet",
           "merge_shards", "SHARDED_UNSUPPORTED"]

#: The LB device's own address in synthetic 4-tuples (mirrors
#: ``repro.workloads.generator.LB_IP``).
_LB_IP = 0xC0A80001

SHARDED_UNSUPPORTED = (
    "instance crashes (--crash-at)",
    "bounded-load ring ingress (ring_bounded)",
    "client reconnect_on_reset",
)


class _NameProxy:
    """Stand-in for a remote instance: just enough for ingress hashing."""

    __slots__ = ("name", "index")

    def __init__(self, name: str, index: int):
        self.name = name
        self.index = index


class ShardIngress:
    """Evaluates the *global* ingress policy inside one shard.

    The real policy object (ECMP or plain consistent-hash ring) picks
    over a fixed list of name proxies — one per fleet instance — so the
    decision is bit-identical to the unsharded fleet's.  ``owner()``
    exposes the global pick to the shard's traffic source; ``pick()``
    satisfies the local single-instance cluster, asserting that only
    owned flows ever reach it.
    """

    def __init__(self, policy: str, hash_seed: int, n_instances: int,
                 shard_index: int):
        if policy == "ring_bounded":
            raise ValueError(
                "ring_bounded ingress cannot be sharded: the bounded-load "
                "walk depends on live load of remote instances")
        self.inner = make_ingress(policy, hash_seed=hash_seed)
        self.n_instances = n_instances
        self.shard_index = shard_index
        self.proxies = [_NameProxy(f"lb{i}", i) for i in range(n_instances)]
        #: Mirrors the wrapped policy's name so the merged summary doc
        #: matches the unsharded fleet's ``ingress`` field.
        self.name = self.inner.name

    def owner(self, four_tuple: FourTuple) -> int:
        """Global instance index this flow is steered to."""
        return self.inner.pick(four_tuple, self.proxies).index

    def pick(self, four_tuple: FourTuple, active: Sequence) -> object:
        """Local cluster hook: only ever sees flows this shard owns."""
        owner = self.owner(four_tuple)
        if owner != self.shard_index:
            raise AssertionError(
                f"shard {self.shard_index} asked to place a flow owned by "
                f"instance {owner}")
        return active[0]


class _ShardedTrafficGenerator:
    """Replays the fleet-wide arrival stream, simulating owned flows only.

    The shared ``arrival_rng`` is drawn identically in every shard (gap,
    port, 4-tuple, per-connection seed — in that order, for *every*
    arrival); everything per-connection afterwards uses the connection's
    private stream.
    """

    def __init__(self, env: Environment, fleet: Fleet, ingress: ShardIngress,
                 arrival_rng: Stream, spec) -> None:
        if spec.reconnect_on_reset:
            raise ValueError(
                "reconnect_on_reset cannot be sharded: the retry would "
                "re-enter the global arrival stream")
        self.env = env
        self.fleet = fleet
        self.ingress = ingress
        self.rng = arrival_rng
        self.spec = spec
        self.opened = 0
        self.refused = 0
        self.reset = 0
        self.requests_sent = 0
        self.foreign = 0
        self._proc = None

    def start(self) -> None:
        self._proc = self.env.process(self._arrivals(), name="shard:arrivals")

    def _arrivals(self):
        rng = self.rng
        spec = self.spec
        rate = spec.conn_rate
        shard_index = self.ingress.shard_index
        owner = self.ingress.owner
        n_ips = spec.n_client_ips
        port = spec.ports[0]
        while True:
            gap = rng.expovariate(rate)
            if self.env.now + gap > spec.duration:
                return
            yield gap
            # Identical draw block for every fleet-wide arrival:
            rng.random()                                  # port pick
            src_ip = 0x0A000000 + rng.randrange(n_ips)
            src_port = rng.randrange(1024, 65535)
            conn_seed = rng.getrandbits(64)
            four_tuple = FourTuple(src_ip, src_port, _LB_IP, port)
            if owner(four_tuple) != shard_index:
                self.foreign += 1
                continue
            self._open(four_tuple, Stream(conn_seed))

    def _open(self, four_tuple: FourTuple, crng: Stream) -> None:
        conn = Connection(four_tuple, tenant_id=0,
                          created_time=self.env.now)
        self.opened += 1
        if not self.fleet.connect(conn):
            self.refused += 1
            return
        self.env.process(self._client(conn, crng), name=f"client:{conn.id}")

    def _client(self, conn: Connection, crng: Stream):
        spec = self.spec
        n = spec.requests_per_conn
        for i in range(n):
            if conn.state in (ConnState.RESET, ConnState.REFUSED):
                self.reset += 1
                return
            request = spec.factory.build(crng, tenant_id=conn.tenant_id)
            self.fleet.deliver(conn, request)
            self.requests_sent += 1
            if spec.request_gap_mean > 0 and i < n - 1:
                yield crng.expovariate(1.0 / spec.request_gap_mean)
        if conn.state in (ConnState.RESET, ConnState.REFUSED):
            self.reset += 1
            return
        conn.client_close()


def run_shard(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Simulate one fleet instance end to end; return a picklable doc.

    Mirrors :func:`repro.check.runner.run_monitored_fleet`'s
    construction exactly — same registry streams, same instance naming
    and per-instance hash-seed derivation as :func:`build_fleet`, same
    workload spec and churn fault — scoped down to one instance.
    """
    from ..check.invariants import watch
    from ..check.pcc import watch_fleet
    from ..lb.server import LBServer, NotificationMode
    from ..obs import FlightRecorder, Tracer
    from ..workloads.distributions import FixedFactory
    from ..workloads.generator import WorkloadSpec

    shard_index = payload["shard_index"]
    n_instances = payload["n_instances"]
    seed = payload["seed"]
    check = payload.get("check", False)
    keep_trace = payload.get("keep_trace", False)

    # Per-shard id namespaces restart at 1 so shard output is a pure
    # function of the payload, not of whatever ran before in this
    # process (jobs=1 runs every shard in the parent).
    saved_ids = Connection._ids
    Connection._ids = itertools.count(1)
    try:
        env = Environment()
        registry = RngRegistry(seed)
        fleet_hash_seed = registry.stream("hash").randrange(2 ** 32)
        tracer = None
        recorder = None
        if keep_trace or check:
            recorder = FlightRecorder(capacity=256)
            tracer = Tracer(env, recorder=recorder, keep_events=keep_trace)
        ingress = ShardIngress(payload.get("ingress", "ecmp"),
                               fleet_hash_seed, n_instances, shard_index)
        instance = LBServer(
            env, payload["n_workers"], [443], NotificationMode.HERMES,
            hash_seed=jhash_words([shard_index], fleet_hash_seed),
            name=f"lb{shard_index}", tracer=tracer)
        fleet = Fleet(env, [instance], policy=payload["policy"],
                      ingress=ingress, hash_seed=fleet_hash_seed,
                      tracer=tracer)
        fleet.start()
        pcc = None
        monitors = []
        if check:
            pcc = watch_fleet(fleet)
            monitors = [watch(instance)]
        duration = payload["duration"]
        spec = WorkloadSpec(name="fleet", conn_rate=payload["conn_rate"],
                            duration=max(0.1, duration - 0.3),
                            factory=FixedFactory((200e-6,)), ports=(443,),
                            requests_per_conn=20, request_gap_mean=0.05)
        gen = _ShardedTrafficGenerator(env, fleet, ingress,
                                       registry.stream("traffic"), spec)
        churn_at = payload.get("churn_at")
        if churn_at is not None:
            env.schedule_callback(
                churn_at,
                lambda: fleet.churn_backends(payload.get("churn_k", 2)))
        gen.start()
        env.run(until=duration)

        passes: Dict[str, int] = {}
        violations = 0
        if pcc is not None:
            passes = dict(pcc.finalize())
            for monitor in monitors:
                for name, count in monitor.finalize().items():
                    passes[name] = passes.get(name, 0) + count
            violations = len(pcc.violations)
        metrics = instance.metrics
        doc = {
            "shard_index": shard_index,
            "instance": instance.name,
            "latencies": list(metrics.request_latencies.values),
            "completed": metrics.requests_completed,
            "failed": metrics.requests_failed,
            "accepted": metrics.connections_accepted,
            "refused": metrics.connections_refused,
            "elapsed": metrics.elapsed,
            "backend_version": fleet.backend_map.version,
            "churn_events": fleet.churn_events,
            "broken_backend": fleet.broken_backend,
            "broken": fleet.broken_connections(),
            "opened": gen.opened,
            "conn_refused": gen.refused,
            "conn_reset": gen.reset,
            "requests_sent": gen.requests_sent,
            "foreign": gen.foreign,
            "pcc_violations": violations,
            "passes": passes,
            "steps": env.steps,
        }
        if keep_trace and tracer is not None:
            doc["events"] = [
                (e.seq, e.ts, e.name, e.cat, e.phase, e.worker, e.conn,
                 e.request, dict(e.fields) if e.fields else {})
                for e in tracer.events]
        return doc
    finally:
        Connection._ids = saved_ids


def merge_shards(shards: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Deterministic cross-shard reduction, in shard-index order.

    Mirrors :func:`repro.fleet.aggregate_metrics`: latency percentiles
    over the pooled samples (never a mean of per-shard p99s), counters
    summed, ``elapsed`` the max.  PCC/invariant verdict counters sum per
    key; trace events concatenate in shard order, then stable-sort by
    timestamp so equal-time events keep shard order.
    """
    if not shards:
        raise ValueError("need at least one shard result")
    shards = sorted(shards, key=lambda d: d["shard_index"])
    latencies = Samples("fleet.latency")
    completed = failed = accepted = refused = 0
    for doc in shards:
        latencies.extend(doc["latencies"])
        completed += doc["completed"]
        failed += doc["failed"]
        accepted += doc["accepted"]
        refused += doc["refused"]
    elapsed = max(doc["elapsed"] for doc in shards)
    versions = {doc["backend_version"] for doc in shards}
    if len(versions) != 1:
        raise AssertionError(
            f"shards diverged on backend version: {sorted(versions)}")
    passes: Dict[str, int] = {}
    for doc in shards:
        for name in sorted(doc["passes"]):
            passes[name] = passes.get(name, 0) + doc["passes"][name]
    merged = {
        "instances": len(shards),
        "avg_ms": latencies.mean * 1e3 if latencies.values else 0.0,
        "p99_ms": latencies.percentile(99) * 1e3 if latencies.values else 0.0,
        "throughput_rps": completed / elapsed if elapsed > 0 else 0.0,
        "completed": completed,
        "failed": failed,
        "accepted": accepted,
        "refused": refused,
        "backend_version": versions.pop(),
        "churn_events": max(doc["churn_events"] for doc in shards),
        "broken_backend": sum(doc["broken_backend"] for doc in shards),
        "broken": sum(doc["broken"] for doc in shards),
        "opened": sum(doc["opened"] for doc in shards),
        "conn_refused": sum(doc["conn_refused"] for doc in shards),
        "conn_reset": sum(doc["conn_reset"] for doc in shards),
        "requests_sent": sum(doc["requests_sent"] for doc in shards),
        "foreign": sum(doc["foreign"] for doc in shards),
        "pcc_violations": sum(doc["pcc_violations"] for doc in shards),
        "passes": {k: passes[k] for k in sorted(passes)},
        "steps": sum(doc["steps"] for doc in shards),
        "sharded": True,
    }
    if any("events" in doc for doc in shards):
        events: List[tuple] = []
        for doc in shards:
            events.extend(tuple(e) for e in doc.get("events", ()))
        events.sort(key=lambda e: e[1])  # stable: ts, then shard order
        merged["trace_events"] = len(events)
        merged["events"] = events
    return merged


def run_sharded_fleet(policy: str = "stateless", n_instances: int = 4,
                      n_workers: int = 2, seed: int = 31,
                      duration: float = 1.5, conn_rate: float = 150.0,
                      churn_at: Optional[float] = 0.6, churn_k: int = 2,
                      ingress: str = "ecmp", jobs: int = 1,
                      check: bool = False,
                      keep_trace: bool = False) -> Dict[str, Any]:
    """Run a fleet as ``n_instances`` independent shards, then merge.

    ``jobs=1`` runs every shard serially in this process; ``jobs>1``
    fans shards across a :class:`ProcessPoolExecutor`.  Output is
    byte-identical either way (slot-indexed collection, enumeration-
    order merge).
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    if ingress == "ring_bounded":
        raise ValueError(
            "ring_bounded ingress cannot be sharded: the bounded-load "
            "walk depends on live load of remote instances")
    FleetPolicy(policy)  # validate early, before any worker spawns
    payloads = [
        {
            "shard_index": index,
            "n_instances": n_instances,
            "n_workers": n_workers,
            "policy": policy,
            "ingress": ingress,
            "seed": seed,
            "duration": duration,
            "conn_rate": conn_rate,
            "churn_at": churn_at,
            "churn_k": churn_k,
            "check": check,
            "keep_trace": keep_trace,
        }
        for index in range(n_instances)
    ]
    results: List[Optional[Dict[str, Any]]] = [None] * n_instances
    if jobs == 1 or n_instances == 1:
        for index, payload in enumerate(payloads):
            results[index] = run_shard(payload)
    else:
        with ProcessPoolExecutor(max_workers=min(jobs, n_instances)) as pool:
            futures = {pool.submit(run_shard, payload): index
                       for index, payload in enumerate(payloads)}
            for future, index in futures.items():
                results[index] = future.result()
    merged = merge_shards([doc for doc in results if doc is not None])
    merged["policy"] = policy
    merged["ingress"] = ingress
    merged["seed"] = seed
    merged["jobs_invariant"] = True  # byte-identical for any --jobs N
    return merged
