"""Fleet orchestration: N LB instances behind an ingress tier (§6 at scale).

A :class:`Fleet` composes the existing building blocks end to end:

- membership, draining, and per-connection device consistency come from
  :class:`~repro.cluster.LBCluster` (one cluster = one fleet), now fed by
  a pluggable ingress policy (``repro.fleet.ingress``);
- each instance is a full :class:`~repro.lb.server.LBServer` with its
  per-worker reuseport stack — nothing about the single-device model
  changes;
- connection -> backend resolution is a :class:`FleetPolicy` from
  ``repro.fleet.lookup`` (stateful table vs Concury-style stateless);
- rolling canary and fleet sizing reuse the §6.2 models
  (:class:`~repro.cluster.CanaryRelease`, AutoscaleModel) unchanged.

Fleet-scope scenarios: :meth:`Fleet.crash_instance` kills a whole
instance (every worker at once) with a detection window, after which the
stateless policy *migrates* surviving client connections to the remaining
instances (any instance can recompute their backend from the flow hash +
version stamp) while the stateful policy loses its table and breaks them;
:meth:`Fleet.churn_backends` rolls the backend set, publishing a new
:class:`BackendMap` version — established connections keep their
birth-version backend (PCC) and only connections whose backend was
removed break.

Every fleet-scope transition emits a ``fleet.*`` trace event, and
``repro.check``'s :class:`~repro.check.PccMonitor` can audit the PCC
contract live against :meth:`live_records` / :meth:`expected_backend`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..cluster.autoscale import AutoscaleModel
from ..cluster.canary import CanaryRelease
from ..cluster.cluster import LBCluster
from ..kernel.hash import jhash_words
from ..kernel.tcp import ConnState, Connection, Request
from ..lb.server import LBServer, NotificationMode
from ..sim.engine import Environment
from ..sim.monitor import Samples
from .ingress import make_ingress
from .lookup import BackendMap, FleetPolicy, make_lookup

__all__ = ["FlowRecord", "Fleet", "aggregate_metrics", "build_fleet"]

#: Connection states with no live data path (nothing left to protect).
_DEAD_STATES = (ConnState.CLOSED, ConnState.RESET, ConnState.REFUSED)


@dataclass
class FlowRecord:
    """The fleet's view of one client connection (its PCC contract)."""

    conn: Connection
    #: Name of the instance currently owning the connection.
    instance_name: str
    #: The backend the connection was pinned to at birth.
    backend: int
    #: BackendMap version the pin was computed under.
    version: int
    #: True once the connection survived an instance failover.
    migrated: bool = False
    #: "instance" / "backend" when the connection legitimately broke.
    broken_reason: Optional[str] = None


class Fleet:
    """N LB instances, one ingress policy, one backend-lookup policy."""

    def __init__(self, env: Environment, instances: Sequence[LBServer],
                 policy=FleetPolicy.STATELESS, ingress="ecmp",
                 hash_seed: int = 0x5eed, n_backends: int = 8,
                 n_slots: int = 128, tracer=None):
        if not instances:
            raise ValueError("need at least one instance")
        if n_backends < 1:
            raise ValueError("need at least one backend")
        self.env = env
        self.tracer = tracer
        if tracer is not None:
            tracer.bind(env)
        if isinstance(ingress, str):
            ingress = make_ingress(ingress, hash_seed=hash_seed)
        self.ingress = ingress
        self.cluster = LBCluster(env, list(instances), hash_seed=hash_seed,
                                 ingress=ingress)
        self.backend_map = BackendMap(list(range(n_backends)),
                                      n_slots=n_slots, hash_seed=hash_seed)
        self._next_backend_id = n_backends
        self.policy = (FleetPolicy(policy) if isinstance(policy, str)
                       else policy)
        self.lookup = make_lookup(self.policy, self.backend_map, hash_seed)
        #: conn id -> :class:`FlowRecord` (the PCC ledger).
        self.records: Dict[int, FlowRecord] = {}
        # -- fleet-scope statistics ---------------------------------------
        self.migrated = 0
        self.broken_instance = 0
        self.broken_backend = 0
        self.churn_events = 0
        self.crashed_instances: List[str] = []

    # -- membership --------------------------------------------------------
    @property
    def instances(self) -> List[LBServer]:
        return self.cluster.devices

    @property
    def active_instances(self) -> List[LBServer]:
        return self.cluster.active_devices

    def start(self) -> None:
        for instance in self.cluster.devices:
            instance.start()

    # -- traffic entry (the generator's ``_Target`` protocol) ---------------
    def connect(self, connection: Connection) -> bool:
        accepted = self.cluster.connect(connection)
        if accepted and connection.tenant_id >= 0:
            instance = self.cluster.device_for(connection)
            backend, version = self.lookup.assign(
                connection.four_tuple, instance.name, connection.id)
            self.records[connection.id] = FlowRecord(
                conn=connection, instance_name=instance.name,
                backend=backend, version=version)
        return accepted

    def deliver(self, connection: Connection, request: Request) -> None:
        self.cluster.deliver(connection, request)

    # -- fleet-scope faults --------------------------------------------------
    def crash_instance(self, index: int,
                       detect_delay: float = 0.005) -> LBServer:
        """Kill every worker of one instance; detection fires later.

        The instance is drained immediately (the L4 tier stops steering
        new flows the moment its health probe fails), but its established
        connections stay dark until ``detect_delay`` elapses — the fleet-
        level analogue of the §7 probe-detection window.  At detection the
        stateless policy migrates the surviving client connections to the
        remaining instances; the stateful policy drops the instance's
        lookup table, breaking them.
        """
        instance = self.cluster.devices[index]
        if not any(w.is_alive for w in instance.workers):
            raise RuntimeError(f"instance {instance.name} already down")
        if self.tracer is not None:
            conns = sum(len(w.conns) for w in instance.workers)
            self.tracer.instant("fleet.instance_crash", "fleet",
                                instance=instance.name, conns=conns,
                                policy=self.policy.value)
        if not self.cluster.is_draining(instance):
            self.cluster.drain_device(instance)
        for worker in instance.workers:
            if worker.is_alive:
                instance.crash_worker(worker.worker_id)
        self.crashed_instances.append(instance.name)
        self.env.schedule_callback(
            detect_delay, lambda: self._detect_instance(instance))
        return instance

    def drain_instance(self, index: int) -> LBServer:
        """Take one instance out of new-connection rotation (canary-style)."""
        instance = self.cluster.devices[index]
        self.cluster.drain_device(instance)
        if self.tracer is not None:
            self.tracer.instant("fleet.drain", "fleet",
                                instance=instance.name)
        return instance

    def _detect_instance(self, instance: LBServer) -> None:
        """The failure-detection edge: failover (stateless) then cleanup."""
        migrated = 0
        if self.lookup.stateless:
            migrated = self._failover_instance(instance)
        else:
            self.lookup.drop_instance(instance.name)
        for worker in instance.workers:
            instance.detect_and_clean_worker(worker.worker_id)
        broken = 0
        for record in self.records.values():
            if record.instance_name != instance.name:
                continue
            if record.broken_reason is not None or record.migrated:
                continue
            if record.conn.state in (ConnState.RESET, ConnState.REFUSED):
                record.broken_reason = "instance"
                broken += 1
        self.broken_instance += broken
        if self.tracer is not None:
            self.tracer.instant("fleet.instance_detect", "fleet",
                                instance=instance.name, migrated=migrated,
                                broken=broken)

    def _failover_instance(self, instance: LBServer) -> int:
        """Stateless failover: re-home the dead instance's client conns.

        Because the backend is a pure function of (flow hash, version),
        any surviving instance can serve these connections without state
        transfer — only the L4 steering and the fd bookkeeping move.
        Probe connections (negative tenant ids) are infrastructure and are
        left for ``detect_and_clean_worker``; their prober re-pins them.
        """
        survivors = [d for d in self.cluster.active_devices
                     if d is not instance and d.alive_workers]
        if not survivors:
            return 0
        migrated = 0
        for worker in instance.workers:
            # Connections still parked in the dead instance's accept
            # queues first: pop them before cleanup closes the sockets
            # (close would RST them).  They were never accepted here, so
            # the dead side has no ledger entry to settle.
            for sock in instance._worker_sockets.get(
                    worker.worker_id, {}).values():
                while sock.accept_queue:
                    conn = sock.accept_queue.popleft()
                    if conn.tenant_id < 0 or conn.state in _DEAD_STATES:
                        conn.reset("worker crashed")
                        continue
                    if self._adopt(conn, instance, worker, survivors,
                                   accepted_here=False):
                        migrated += 1
            for fd in list(worker.conns):
                conn = worker.conns[fd]
                if conn.tenant_id < 0 or conn.state is not ConnState.ACCEPTED:
                    continue
                if self._adopt(conn, instance, worker, survivors,
                               accepted_here=True):
                    migrated += 1
        self.migrated += migrated
        return migrated

    def _adopt(self, conn: Connection, instance: LBServer, worker,
               survivors: List[LBServer], accepted_here: bool) -> bool:
        target = self.ingress.pick(conn.four_tuple, survivors)
        new_worker = target.adopt_connection(conn)
        if new_worker is None:
            return False  # every survivor worker at capacity: conn reset
        if accepted_here:
            # Settle the dead worker's ledger: the migration is a close
            # from its point of view (accepted == closed + in-flight).
            # Its WST column is NOT touched — a dead publisher cannot
            # decrement, which is exactly why _crashed_ever exempts it.
            old_fd = conn.fd if conn.fd in worker.conns else None
            for fd in list(worker.conns):
                if worker.conns[fd] is conn:
                    old_fd = fd
                    break
            if old_fd is not None:
                if worker.epoll.watches(old_fd):
                    worker.epoll.ctl_del(old_fd)
                del worker.conns[old_fd]
                old_fd.close()
                worker.metrics.closed += 1
                worker.metrics.connections.decrement()
        self.cluster._conn_device[conn.id] = target
        record = self.records.get(conn.id)
        if record is not None:
            self.lookup.migrate(conn.id, record.instance_name, target.name)
            record.instance_name = target.name
            record.migrated = True
        if self.tracer is not None:
            self.tracer.instant("fleet.migrate", "fleet", conn=conn.id,
                                src=instance.name, dst=target.name,
                                worker=new_worker.worker_id)
        return True

    def churn_backends(self, k: int = 1) -> int:
        """Roll the backend set: retire the ``k`` highest ids, add ``k`` new.

        Publishes a new :class:`BackendMap` version.  Established
        connections keep resolving under their birth version (PCC); only
        connections pinned to a retired backend break — the legal PCC
        exception — and are reset so their clients reconnect under the
        new version.  Returns the number of connections broken.
        """
        current = self.backend_map.backends
        if k < 1 or k >= len(current):
            raise ValueError("churn size must be in [1, n_backends)")
        removed = sorted(current)[-k:]
        kept = [b for b in current if b not in removed]
        added = [self._next_backend_id + i for i in range(k)]
        self._next_backend_id += k
        version = self.backend_map.update(kept + added)
        broken = 0
        for record in self.records.values():
            if record.broken_reason is not None:
                continue
            if record.conn.state in _DEAD_STATES:
                continue
            if record.backend in removed:
                record.broken_reason = "backend"
                broken += 1
                record.conn.reset("backend removed")
        self.broken_backend += broken
        self.churn_events += 1
        if self.tracer is not None:
            self.tracer.instant("fleet.backend_churn", "fleet",
                                removed=removed, added=added,
                                version=version, broken=broken)
        return broken

    # -- §6.2 model reuse ----------------------------------------------------
    def rolling_canary(self, make_new_instance: Callable[[int], LBServer],
                       batch_size: int = 1, batch_interval: float = 1.0,
                       drain_poll: float = 0.5) -> CanaryRelease:
        """A fleet-wide rolling release, driven by the §6.2 canary model.

        The release operates on this fleet's cluster, so draining, device
        retirement, and per-connection consistency all flow through the
        same membership the ingress tier uses.  Call ``.start()`` on the
        returned release to begin the rollout.
        """
        return CanaryRelease(
            self.env, self.cluster, list(self.cluster.active_devices),
            make_new_instance, batch_size=batch_size,
            batch_interval=batch_interval, drain_poll=drain_poll)

    def instances_needed(self, traffic: float, fraction_hermes: float = 1.0,
                         model: Optional[AutoscaleModel] = None) -> int:
        """Fleet sizing via the §6.2 autoscale model (reused, not rebuilt)."""
        model = model if model is not None else AutoscaleModel()
        return model.devices_needed(traffic, fraction_hermes)

    # -- PCC audit surface (consumed by repro.check.PccMonitor) --------------
    def live_records(self) -> List[FlowRecord]:
        """Records whose PCC contract is currently enforceable."""
        out = []
        for record in self.records.values():
            if record.broken_reason is not None:
                continue
            if record.conn.state in _DEAD_STATES:
                continue
            out.append(record)
        return out

    def expected_backend(self, record: FlowRecord) -> Optional[int]:
        """What the lookup policy answers *now* for a record's connection."""
        return self.lookup.resolve(record.conn.four_tuple,
                                   record.instance_name, record.conn.id,
                                   record.version)

    # -- reporting -----------------------------------------------------------
    def broken_connections(self) -> int:
        return self.broken_instance + self.broken_backend

    def summary(self) -> dict:
        doc = aggregate_metrics(self.cluster.devices)
        doc["policy"] = self.policy.value
        doc["ingress"] = self.ingress.name
        doc["backend_version"] = self.backend_map.version
        doc["churn_events"] = self.churn_events
        doc["migrated"] = self.migrated
        doc["broken_instance"] = self.broken_instance
        doc["broken_backend"] = self.broken_backend
        doc["broken"] = self.broken_connections()
        doc["crashed_instances"] = list(self.crashed_instances)
        return doc


def aggregate_metrics(devices: Sequence[LBServer]) -> dict:
    """Merge per-device metrics into one fleet-level row.

    Latency percentiles are computed over the *pooled* samples (a mean of
    per-device p99s would be wrong), counters are summed.  This is the
    replacement for the deprecated ``LBCluster.total_completed`` /
    ``cluster_throughput`` helpers.
    """
    if not devices:
        raise ValueError("need at least one device")
    latencies = Samples("fleet.latency")
    completed = failed = accepted = refused = 0
    for device in devices:
        latencies.extend(device.metrics.request_latencies.values)
        completed += device.metrics.requests_completed
        failed += device.metrics.requests_failed
        accepted += device.metrics.connections_accepted
        refused += device.metrics.connections_refused
    elapsed = max(device.metrics.elapsed for device in devices)
    return {
        "instances": len(devices),
        "avg_ms": latencies.mean * 1e3,
        "p99_ms": latencies.percentile(99) * 1e3,
        "throughput_rps": completed / elapsed if elapsed > 0 else 0.0,
        "completed": completed,
        "failed": failed,
        "accepted": accepted,
        "refused": refused,
    }


def build_fleet(env: Environment, n_instances: int, n_workers: int,
                ports: Sequence[int], mode=NotificationMode.HERMES,
                policy=FleetPolicy.STATELESS, ingress="ecmp",
                hash_seed: int = 0x5eed, n_backends: int = 8,
                n_slots: int = 128, tracer=None, profile=None,
                config=None) -> Fleet:
    """Construct N uniform LB instances plus the fleet around them.

    Each instance gets a distinct, deterministically derived kernel hash
    seed (``jhash([index], hash_seed)``) so the per-port reuseport sprays
    of different instances are decorrelated, as distinct VMs' skb hash
    seeds are.
    """
    if isinstance(mode, str):
        mode = NotificationMode(mode)
    instances = []
    for index in range(n_instances):
        instances.append(LBServer(
            env, n_workers, ports, mode,
            hash_seed=jhash_words([index], hash_seed),
            name=f"lb{index}", tracer=tracer, profile=profile,
            config=config))
    return Fleet(env, instances, policy=policy, ingress=ingress,
                 hash_seed=hash_seed, n_backends=n_backends,
                 n_slots=n_slots, tracer=tracer)
