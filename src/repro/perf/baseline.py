"""The committed pre-PR baseline: what the unoptimised core measured.

Captured by running this same bench suite against the tree *before* the
fast-path PR landed (commit 4bc651e), on the machine whose calibration score
is recorded below.  ``normalized`` is ``ops_per_sec / calibration`` — the
machine-independent score the trajectory is judged on.

``macro_lb_run`` predates the engine's ``steps`` counter, so its unit is
"requests"; ``macro_engine_events_per_sec`` records the same run's raw
engine event throughput (measured with a counting ``step`` shim: 18,599
events per 2.5 s cell, best wall 0.249 s).

This block is a historical record; do not re-measure it on new machines.
Post-PR numbers live in ``BENCH_perf.json`` and are refreshed by
``repro perf``.
"""

from __future__ import annotations

#: The pre-PR capture run (see docs/PERFORMANCE.md for the procedure).
PRE_PR_BASELINE = {
    "captured_at_commit": "4bc651e",
    "calibration_ops_per_sec": 25782847.2,
    "macro_engine_events_per_sec": 74585.0,
    "benches": {
        "engine_throughput": {
            "ops": 200000, "seconds": 0.323881, "ops_per_sec": 617511.5,
            "unit": "events",
            "meta": {"n_procs": 50, "events_per_proc": 4000},
        },
        "condition_allof": {
            "ops": 6000, "seconds": 0.137074, "ops_per_sec": 43771.9,
            "unit": "sub-events",
            "meta": {"width": 1000, "rounds": 6},
        },
        "schedule_callback": {
            "ops": 50000, "seconds": 0.238444, "ops_per_sec": 209692.9,
            "unit": "callbacks",
            "meta": {"n": 50000},
        },
        "scheduler_cascade": {
            "ops": 20000, "seconds": 0.80263, "ops_per_sec": 24918.1,
            "unit": "calls",
            "meta": {"n_workers": 64, "calls": 20000},
        },
        "epoll_wakeup_fanout": {
            "ops": 32000, "seconds": 0.331192, "ops_per_sec": 96620.8,
            "unit": "wakeups",
            "meta": {"n_workers": 32, "rounds": 1000},
        },
        "macro_lb_run": {
            "ops": 1571, "seconds": 0.232943, "ops_per_sec": 6744.1,
            "unit": "requests",
            "meta": {"mode": "hermes", "case": "case2", "load": "medium",
                     "n_workers": 8, "duration": 2.5,
                     "completed": 1571, "avg_ms": 47.8698},
        },
    },
    "normalized": {
        "engine_throughput": 0.02395,
        "condition_allof": 0.001698,
        "schedule_callback": 0.008133,
        "scheduler_cascade": 0.000966,
        "epoll_wakeup_fanout": 0.003747,
        "macro_lb_run": 0.000262,
    },
}
