"""Timing harness: calibrated, repeatable micro/macro benchmarks.

Every bench returns a :class:`BenchResult` (ops, wall seconds, unit).  The
harness also measures a *calibration* score — a fixed pure-Python arithmetic
loop — so two reports from different machines can be compared on the
normalized ratio ``ops_per_sec / calibration_ops_per_sec`` instead of raw
wall-clock numbers.  That is what the CI regression gate uses: a slower
runner slows the calibration loop and the benches alike, so the ratio is
(approximately) machine-independent while a real hot-path regression is not.

Benches are deliberately seeded and allocation-patterned identically run to
run; the only nondeterminism left is the clock.  ``repeats`` runs take the
best (minimum-noise) measurement, the standard micro-benchmark practice.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = ["BenchResult", "calibrate", "time_bench", "run_benchmarks",
           "BENCH_NAMES"]


@dataclass
class BenchResult:
    """One benchmark measurement."""

    name: str
    #: Operations performed (events stepped, cascade calls, wakeups...).
    ops: int
    #: Best wall-clock seconds over the repeats.
    seconds: float
    #: What one op is, for the report ("events", "calls", "wakeups"...).
    unit: str = "ops"
    #: Bench-specific extras (scale parameters, derived metrics).
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def ops_per_sec(self) -> float:
        return self.ops / self.seconds if self.seconds > 0 else float("inf")

    def as_dict(self) -> Dict[str, Any]:
        return {
            "ops": self.ops,
            "seconds": round(self.seconds, 6),
            "ops_per_sec": round(self.ops_per_sec, 1),
            "unit": self.unit,
            "meta": self.meta,
        }


def calibrate(loops: int = 2_000_000, repeats: int = 3) -> float:
    """Machine-speed reference: ops/sec of a fixed arithmetic loop."""
    best = float("inf")
    for _ in range(repeats):
        acc = 0
        start = time.perf_counter()
        for i in range(loops):
            acc += i & 7
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    assert acc >= 0  # keep the loop from being optimized away
    return loops / best


def time_bench(name: str, setup: Callable[[], Any],
               run: Callable[[Any], int], unit: str = "ops",
               repeats: int = 3,
               meta: Optional[Dict[str, Any]] = None) -> BenchResult:
    """Time ``run(state)`` over fresh ``setup()`` state, keep the best run.

    ``run`` returns the number of ops it performed; a fresh state per
    repeat keeps the measurements independent (no warm heaps carrying over).
    """
    best_seconds = float("inf")
    ops = 0
    for _ in range(repeats):
        state = setup()
        start = time.perf_counter()
        ops = run(state)
        elapsed = time.perf_counter() - start
        best_seconds = min(best_seconds, elapsed)
    return BenchResult(name=name, ops=ops, seconds=best_seconds, unit=unit,
                       meta=dict(meta or {}))


#: Canonical bench registry order (also the report order).
BENCH_NAMES: Tuple[str, ...] = (
    "engine_throughput",
    "engine_wheel_throughput",
    "condition_allof",
    "schedule_callback",
    "scheduler_cascade",
    "epoll_wakeup_fanout",
    "macro_lb_run",
    "sweep_table3",
    "fleet_sharded",
)


def run_benchmarks(quick: bool = False,
                   only: Optional[List[str]] = None,
                   repeats: int = 3) -> Dict[str, BenchResult]:
    """Run the registered benches; returns name -> result in registry order."""
    from . import benches

    selected = list(BENCH_NAMES) if not only else [
        n for n in BENCH_NAMES if n in only]
    unknown = [] if not only else [n for n in only if n not in BENCH_NAMES]
    if unknown:
        raise ValueError(f"unknown bench(es): {', '.join(unknown)}; "
                         f"choose from {', '.join(BENCH_NAMES)}")
    results: Dict[str, BenchResult] = {}
    for name in selected:
        fn = getattr(benches, f"bench_{name}")
        results[name] = fn(quick=quick, repeats=repeats)
    return results
