"""Golden-hash fingerprints: proof the fast path changed nothing.

Every optimisation in the simulation core carries one non-negotiable
constraint: bit-identical behaviour.  Event ordering (time, priority,
insertion order) and RNG draws must be exactly what they were before the
fast path landed.  These helpers canonicalise the full metrics output of a
seeded experiment into JSON and hash it; the golden tests in
``tests/test_determinism_golden.py`` pin the hashes that the *unoptimised*
engine produced, so any behavioural drift — a reordered wakeup, a stolen
RNG draw, a float computed in a different order — flips the digest.

The fingerprints deliberately cover the whole stack, not just the engine:

- :func:`cell_fingerprint` — one end-to-end :class:`~repro.lb.server.LBServer`
  run (engine, epoll, wait queues, scheduler, WST, workers, metrics).
- :func:`sec7_fingerprint` — the §7 crash-blast scenario in both exclusive
  and Hermes modes (fault injection, restart paths, per-worker teardown).
- :func:`fig13_fingerprint` — the Fig. 13 load-balance sweep (periodic
  samplers, per-worker CPU accounting, three notification modes).
- :func:`fleet_fingerprint` — one ``fleet_scale`` cell (ingress hashing,
  per-instance hash-seed derivation, backend-map versioning, failover
  migration, PCC monitoring).
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

__all__ = [
    "canonical_json",
    "fingerprint",
    "cell_fingerprint",
    "sec7_fingerprint",
    "fig13_fingerprint",
    "fleet_fingerprint",
]


def canonical_json(obj: Any) -> str:
    """Serialize ``obj`` to a canonical JSON string.

    Sorted keys, no whitespace variance, ``repr``-faithful floats (Python's
    float → JSON round-trip is shortest-repr, which is deterministic for
    identical bit patterns).  Tuples collapse to lists.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def fingerprint(obj: Any) -> str:
    """SHA-256 hex digest of the canonical JSON of ``obj``."""
    return hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()


def cell_fingerprint(mode: str = "hermes", case: str = "case2",
                     load: str = "light", n_workers: int = 8,
                     duration: float = 2.0, seed: int = 7) -> str:
    """Hash one end-to-end (mode, case, load) cell's metrics output."""
    from ..experiments.common import run_case_cell
    from ..lb.server import NotificationMode

    result = run_case_cell(NotificationMode(mode), case, load,
                           n_workers=n_workers, duration=duration, seed=seed)
    return fingerprint({
        "mode": result.mode,
        "workload": result.workload,
        "avg_ms": result.avg_ms,
        "p99_ms": result.p99_ms,
        "throughput_rps": result.throughput_rps,
        "completed": result.completed,
        "failed": result.failed,
        "refused": result.refused,
        "cpu_sd": result.cpu_sd,
        "conn_sd": result.conn_sd,
        "cpu_utils": result.cpu_utils,
        "accepted_per_worker": list(result.accepted_per_worker),
    })


def sec7_fingerprint(seed: int = 79) -> str:
    """Hash the §7 experience suite (crash blast in both modes + RR/reuse).

    Routed through the registry (never the deprecated ``run_*`` wrappers).
    ``seed`` anchors the crash-blast cells exactly as before; the registry
    derives the RR/reuse cell seeds as ``seed - 8`` / ``seed - 6``, which
    for the default reproduces the historical 71/73/79 assignment — and
    the pinned golden hash — byte for byte.
    """
    from ..experiments.registry import get

    merged = get("sec7").run(seed=seed - 8)
    cells = merged["cells"]
    rr = cells["backend_rr"]
    reuse = cells["connection_reuse"]
    blasts = {
        mode: {
            "total_connections": cells[f"crash_blast/{mode}"]
            ["total_connections"],
            "connections_killed": cells[f"crash_blast/{mode}"]
            ["connections_killed"],
            "blast_fraction": cells[f"crash_blast/{mode}"]["blast_fraction"],
        }
        for mode in ("exclusive", "hermes")
    }
    return fingerprint({
        "backend_rr": {
            "imbalance_synchronized": rr["imbalance_synchronized"],
            "imbalance_randomized": rr["imbalance_randomized"],
        },
        "connection_reuse": {
            "handshakes_per_worker_pools":
                reuse["handshakes_per_worker_pools"],
            "handshakes_shared_pool": reuse["handshakes_shared_pool"],
            "added_latency_per_worker": reuse["added_latency_per_worker"],
            "added_latency_shared": reuse["added_latency_shared"],
        },
        "crash_blast": blasts,
    })


def fig13_fingerprint(n_workers: int = 4, duration: float = 2.0,
                      seed: int = 47) -> str:
    """Hash the Fig. 13 load-balance sweep (all three modes, full series).

    Routed through the registry: the fig13 cells run the identical
    ``_run_mode`` underneath with the identical per-mode seed, and the
    canonical-JSON normalization the registry applies is exactly what
    :func:`fingerprint` does anyway, so the pinned hash is unchanged.
    """
    from ..experiments.registry import get

    merged = get("fig13").run(
        seed=seed, overrides={"n_workers": n_workers, "duration": duration})
    series = merged["cells"]
    return fingerprint({
        "cpu_sd": merged["cpu_sd"],
        "conn_sd": merged["conn_sd"],
        "cpu_sd_series": {m: [list(p) for p in doc["cpu_series"]]
                          for m, doc in series.items()},
        "conn_sd_series": {m: [list(p) for p in doc["conn_series"]]
                           for m, doc in series.items()},
    })


def fleet_fingerprint(n_instances: int = 4, policy: str = "stateless",
                      seed: int = 31) -> str:
    """Hash one ``fleet_scale`` cell end to end (churn + instance crash).

    Covers everything cluster-of-clusters adds on top of a single device:
    the ECMP ingress spray, per-instance hash-seed derivation, version-
    stamped backend-map churn, stateless failover migration, and the PCC/
    invariant monitors (which must read without perturbing the run).
    """
    from ..experiments.fleet_scale import run_fleet_cell

    doc = run_fleet_cell(seed, {"n_instances": n_instances,
                                "policy": policy})
    return fingerprint({
        "instances": doc["instances"],
        "policy": doc["policy"],
        "p99_ms": doc["p99_ms"],
        "avg_ms": doc["avg_ms"],
        "completed": doc["completed"],
        "failed": doc["failed"],
        "broken_instance": doc["broken_instance"],
        "broken_backend": doc["broken_backend"],
        "migrated": doc["migrated"],
        "pcc_violations": doc["pcc_violations"],
    })
