"""The benchmark suite: engine, conditions, scheduler, epoll, end-to-end.

Each bench exercises one hot path named in the Table 5 / §5 cost model:

- ``engine_throughput`` — raw discrete-event dispatch: N processes each
  yielding M timeouts; measures events/sec through ``Environment.run``.
- ``condition_allof`` — ``AllOf`` completion over wide event sets (the
  path that used to recount all sub-events per trigger, O(n²)).
- ``schedule_callback`` — the process-less deferred-call path.
- ``scheduler_cascade`` — ``CascadingScheduler.schedule_and_sync`` over a
  64-worker WST, counters drifting deterministically between calls.
- ``epoll_wakeup_fanout`` — a thundering-herd wake: one shared fd, every
  worker's epoll registered non-exclusively, full callback fan-out plus
  sleeper wakeups and re-harvest.
- ``macro_lb_run`` — one end-to-end :class:`~repro.lb.server.LBServer`
  run in Hermes mode on a Table-3 workload cell (the number every sweep
  in this repo actually pays).
- ``sweep_table3`` — the orchestrator itself: a reduced Table-3 grid
  through :func:`repro.sweep.run_sweep` serially and with a worker pool,
  asserting the merged documents are byte-identical (the sweep
  determinism contract) and scoring cells/sec.
"""

from __future__ import annotations

from typing import Any, Dict

from .harness import BenchResult, time_bench

__all__ = [
    "bench_engine_throughput",
    "bench_engine_wheel_throughput",
    "bench_condition_allof",
    "bench_schedule_callback",
    "bench_scheduler_cascade",
    "bench_epoll_wakeup_fanout",
    "bench_macro_lb_run",
    "bench_sweep_table3",
    "bench_fleet_sharded",
]


# ---------------------------------------------------------------------------
# engine_throughput
# ---------------------------------------------------------------------------

def bench_engine_throughput(quick: bool = False,
                            repeats: int = 3) -> BenchResult:
    from ..sim.engine import Environment

    n_procs = 50
    n_events = 400 if quick else 4000

    def ticker(env, n):
        for _ in range(n):
            yield 1.0  # direct timer fast path

    def setup():
        env = Environment()
        for _ in range(n_procs):
            env.process(ticker(env, n_events))
        return env

    def run(env) -> int:
        env.run()
        return n_procs * n_events

    return time_bench("engine_throughput", setup, run, unit="events",
                      repeats=repeats,
                      meta={"n_procs": n_procs, "events_per_proc": n_events})


# ---------------------------------------------------------------------------
# engine_wheel_throughput
# ---------------------------------------------------------------------------

def bench_engine_wheel_throughput(quick: bool = False,
                                  repeats: int = 3) -> BenchResult:
    """Timer wheel vs heap at fleet scale: 20k concurrent timer processes.

    The wheel's O(1) slot insert pays off where the heap pays O(log n) —
    large live populations — so this bench runs at 20000 processes (the
    64-instance-fleet regime) rather than ``engine_throughput``'s 50.
    Heap and wheel reps are interleaved within one process so frequency
    drift on shared hosts hits both sides equally; the headline score is
    the wheel's, with the live heap number and both speedup ratios in
    the meta.
    """
    import time as _time

    from ..sim.engine import Environment
    from .baseline import PRE_PR_BASELINE

    n_procs = 2000 if quick else 20000
    n_events = 40 if quick else 75

    def ticker(n):
        for _ in range(n):
            yield 1.0

    def one(scheduler: str) -> float:
        env = Environment(scheduler=scheduler)
        for _ in range(n_procs):
            env.process(ticker(n_events))
        start = _time.perf_counter()
        env.run()
        return _time.perf_counter() - start

    total = n_procs * n_events
    best_heap = best_wheel = float("inf")
    for _ in range(max(repeats, 2)):
        best_heap = min(best_heap, one("heap"))
        best_wheel = min(best_wheel, one("wheel"))
    heap_ops = total / best_heap
    wheel_ops = total / best_wheel
    meta: Dict[str, Any] = {
        "n_procs": n_procs, "events_per_proc": n_events,
        "heap_ops_per_sec": round(heap_ops, 1),
        "speedup_vs_heap": round(wheel_ops / heap_ops, 3),
    }
    pre = (PRE_PR_BASELINE.get("benches", {})
           .get("engine_throughput", {}).get("ops_per_sec"))
    if pre:
        meta["speedup_vs_pre_pr_heap"] = round(wheel_ops / pre, 3)
    return BenchResult(name="engine_wheel_throughput", ops=total,
                       seconds=best_wheel, unit="events", meta=meta)


# ---------------------------------------------------------------------------
# condition_allof
# ---------------------------------------------------------------------------

def bench_condition_allof(quick: bool = False,
                          repeats: int = 3) -> BenchResult:
    from ..sim.engine import AllOf, AnyOf, Environment

    width = 200 if quick else 1000
    rounds = 3 if quick else 6

    def setup():
        return None

    def run(_state) -> int:
        for _ in range(rounds):
            env = Environment()
            events = [env.timeout(float(i % 7)) for i in range(width)]
            AllOf(env, events)
            AnyOf(env, events[: width // 2])
            env.run()
        return rounds * width

    return time_bench("condition_allof", setup, run, unit="sub-events",
                      repeats=repeats, meta={"width": width,
                                             "rounds": rounds})


# ---------------------------------------------------------------------------
# schedule_callback
# ---------------------------------------------------------------------------

def bench_schedule_callback(quick: bool = False,
                            repeats: int = 3) -> BenchResult:
    from ..sim.engine import Environment

    n = 5_000 if quick else 50_000

    def setup():
        return Environment()

    def run(env) -> int:
        fired = [0]

        def tick():
            fired[0] += 1

        for i in range(n):
            env.schedule_callback(float(i % 13), tick)
        env.run()
        assert fired[0] == n
        return n

    return time_bench("schedule_callback", setup, run, unit="callbacks",
                      repeats=repeats, meta={"n": n})


# ---------------------------------------------------------------------------
# scheduler_cascade
# ---------------------------------------------------------------------------

def bench_scheduler_cascade(quick: bool = False,
                            repeats: int = 3) -> BenchResult:
    from ..core.ebpf import BpfArrayMap
    from ..core.scheduler import CascadingScheduler
    from ..core.wst import WorkerStatusTable

    n_workers = 64
    calls = 2_000 if quick else 20_000

    def setup():
        clock = [0.0]
        wst = WorkerStatusTable(n_workers, clock=lambda: clock[0])
        sched = CascadingScheduler(wst, BpfArrayMap(1, name="sel"),
                                   clock=lambda: clock[0])
        return clock, wst, sched

    def run(state) -> int:
        clock, wst, sched = state
        for i in range(calls):
            clock[0] += 0.0001
            worker = i % n_workers
            wst.touch_timestamp(worker)
            wst.add_events(worker, (i % 5) - 2)
            wst.add_conns(worker, 1 if i % 3 else -1)
            sched.schedule_and_sync()
        return calls

    return time_bench("scheduler_cascade", setup, run, unit="calls",
                      repeats=repeats,
                      meta={"n_workers": n_workers, "calls": calls})


# ---------------------------------------------------------------------------
# epoll_wakeup_fanout
# ---------------------------------------------------------------------------

class _FanoutFd:
    """A minimal pollable fd: a wait queue and an explicit readiness mask."""

    __slots__ = ("wait_queue", "ready")

    def __init__(self):
        from ..kernel.waitqueue import WaitQueue

        self.wait_queue = WaitQueue()
        self.ready = 0

    def poll(self) -> int:
        return self.ready


def bench_epoll_wakeup_fanout(quick: bool = False,
                              repeats: int = 3) -> BenchResult:
    from ..kernel.epoll import Epoll
    from ..kernel.socket import EPOLLIN
    from ..sim.engine import Environment

    n_workers = 32
    rounds = 100 if quick else 1000

    def waiter(env, epoll, counts, idx):
        while True:
            events = yield from epoll.wait(timeout=10.0)
            counts[idx] += len(events)

    def driver(env, fd):
        for _ in range(rounds):
            # Herd wake: every registered epoll's callback runs.
            fd.wait_queue.wake(EPOLLIN)
            yield env.timeout(1.0)

    def setup():
        env = Environment()
        fd = _FanoutFd()
        counts = [0] * n_workers
        for i in range(n_workers):
            epoll = Epoll(env, name=f"bench.w{i}", collect_stats=False,
                          worker_id=i)
            # Edge-triggered: each wake delivers exactly one event and the
            # readiness does not persist — a clean repeatable fan-out.
            epoll.ctl_add(fd, edge_triggered=True)
            env.process(waiter(env, epoll, counts, i), name=f"waiter{i}")
        env.process(driver(env, fd), name="driver")
        return env, counts

    def run(state) -> int:
        env, counts = state
        env.run(until=rounds + 5.0)
        assert sum(counts) == n_workers * rounds
        return n_workers * rounds

    return time_bench("epoll_wakeup_fanout", setup, run, unit="wakeups",
                      repeats=repeats,
                      meta={"n_workers": n_workers, "rounds": rounds})


# ---------------------------------------------------------------------------
# macro_lb_run
# ---------------------------------------------------------------------------

def bench_macro_lb_run(quick: bool = False, repeats: int = 3) -> BenchResult:
    from ..experiments.common import run_case_cell
    from ..lb.server import NotificationMode

    duration = 0.75 if quick else 2.5
    n_workers = 8
    extra: Dict[str, Any] = {}

    def setup():
        return None

    def run(_state) -> int:
        result = run_case_cell(NotificationMode.HERMES, "case2", "medium",
                               n_workers=n_workers, duration=duration,
                               seed=7, keep_server=True)
        env = result.server.env
        # Engine event count: present on the fast-path engine; older
        # engines (the pre-PR baseline capture) lack the counter.
        steps = getattr(env, "steps", None)
        extra["completed"] = result.completed
        extra["avg_ms"] = round(result.avg_ms, 4)
        if steps is not None:
            extra["engine_events"] = steps
        return steps if steps is not None else result.completed

    # End-to-end runs are seconds long; cap the repeats to keep --quick fast.
    result = time_bench("macro_lb_run", setup, run,
                        unit="events", repeats=min(repeats, 2),
                        meta={"mode": "hermes", "case": "case2",
                              "load": "medium", "n_workers": n_workers,
                              "duration": duration})
    if "engine_events" not in extra:
        result.unit = "requests"
    result.meta.update(extra)
    return result


# ---------------------------------------------------------------------------
# sweep_table3
# ---------------------------------------------------------------------------

def bench_sweep_table3(quick: bool = False, repeats: int = 3) -> BenchResult:
    from ..sweep import run_sweep

    jobs = 4
    overrides: Dict[str, Any] = {
        "cases": ["case2"] if quick else ["case1", "case2"],
        "loads": ["light"] if quick else ["light", "medium"],
        "duration_scale": 0.12,
        "n_workers": 2,
        "ports": list(range(20001, 20011)),
        "settle": 0.5,
    }
    extra: Dict[str, Any] = {}

    def setup():
        return None

    def run(_state) -> int:
        serial = run_sweep("table3", seed=11, jobs=1, cache=False,
                           overrides=overrides)
        fanned = run_sweep("table3", seed=11, jobs=jobs, cache=False,
                           overrides=overrides)
        # The sweep contract: fan-out must not change a single byte.
        extra["byte_identical"] = serial.to_json() == fanned.to_json()
        assert extra["byte_identical"]
        extra["serial_wall_s"] = round(serial.wall_seconds, 4)
        extra["parallel_wall_s"] = round(fanned.wall_seconds, 4)
        if fanned.wall_seconds > 0:
            extra["speedup"] = round(
                serial.wall_seconds / fanned.wall_seconds, 3)
        return len(serial.runs) + len(fanned.runs)

    # Each repeat runs the grid twice end to end; cap like macro_lb_run.
    result = time_bench("sweep_table3", setup, run, unit="cells",
                        repeats=min(repeats, 2),
                        meta={"jobs": jobs,
                              "cases": list(overrides["cases"]),
                              "loads": list(overrides["loads"]),
                              "n_workers": overrides["n_workers"],
                              "duration_scale":
                                  overrides["duration_scale"]})
    result.meta.update(extra)
    return result


# ---------------------------------------------------------------------------
# fleet_sharded
# ---------------------------------------------------------------------------

def bench_fleet_sharded(quick: bool = False, repeats: int = 3) -> BenchResult:
    """Process-sharded fleet: serial vs fanned, byte-identity asserted.

    Mirrors ``sweep_table3``'s contract at the fleet tier: every repeat
    runs the same N-instance fleet serially (``jobs=1``) and through a
    process pool (``jobs=2``), asserts the merged documents match byte
    for byte, and scores engine events/sec across both runs.
    """
    import json as _json

    from ..fleet.sharded import run_sharded_fleet

    # Quick shrinks the fleet but keeps the duration: per-run fixed
    # overhead scales with wall time, so shortening the run (rather
    # than the fleet) skews events/sec and trips the normalized gate.
    n_instances = 4 if quick else 8
    duration = 1.5
    extra: Dict[str, Any] = {}

    def setup():
        return None

    def run(_state) -> int:
        serial = run_sharded_fleet(n_instances=n_instances,
                                   duration=duration, jobs=1)
        fanned = run_sharded_fleet(n_instances=n_instances,
                                   duration=duration, jobs=2)
        extra["byte_identical"] = (
            _json.dumps(serial, sort_keys=True)
            == _json.dumps(fanned, sort_keys=True))
        assert extra["byte_identical"]
        extra["completed"] = serial["completed"]
        extra["foreign"] = serial["foreign"]
        return serial["steps"] + fanned["steps"]

    result = time_bench("fleet_sharded", setup, run, unit="events",
                        repeats=min(repeats, 2),
                        meta={"n_instances": n_instances,
                              "duration": duration, "jobs": 2})
    result.meta.update(extra)
    return result
