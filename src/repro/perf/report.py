"""Canonical BENCH_perf.json writer, loader, and regression gate.

The report is canonical JSON: a fixed schema, sorted keys, stable rounding —
so two reports diff cleanly and CI can compare them field by field.  Raw
ops/sec are machine-dependent; the regression gate therefore compares the
*normalized* score ``ops_per_sec / calibration_ops_per_sec`` (see
:mod:`repro.perf.harness`), which cancels most of the machine-speed
difference between the committed baseline and the CI runner.
"""

from __future__ import annotations

import json
import os
import platform
import sys
from typing import Any, Dict, List, Optional

from .baseline import PRE_PR_BASELINE
from .harness import BENCH_NAMES, BenchResult

__all__ = ["build_report", "write_report", "load_report",
           "check_regression", "render_report", "SCHEMA"]

SCHEMA = "repro.perf/v1"

#: Benches the CI regression gate checks (the events/sec trajectory).
GATED_BENCHES = ("engine_throughput", "engine_wheel_throughput",
                 "macro_lb_run", "sweep_table3", "fleet_sharded")


def _effective_affinity() -> Optional[int]:
    """CPUs this process may actually run on (None where unsupported)."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return None


def build_report(results: Dict[str, BenchResult],
                 calibration_ops_per_sec: float,
                 quick: bool = False) -> Dict[str, Any]:
    """Assemble the canonical report dict from bench results."""
    benches = {name: results[name].as_dict()
               for name in BENCH_NAMES if name in results}
    normalized = {
        name: round(results[name].ops_per_sec / calibration_ops_per_sec, 6)
        for name in benches
    }
    return {
        "schema": SCHEMA,
        "quick": quick,
        "host": {
            "python": platform.python_version(),
            "implementation": sys.implementation.name,
            "platform": sys.platform,
            "calibration_ops_per_sec": round(calibration_ops_per_sec, 1),
            "cpu_count": os.cpu_count(),
            # Effective affinity — a 64-core box pinned to 1 CPU must not
            # masquerade as 64-way (the PR-4 0.88x container artifact).
            "cpu_affinity": _effective_affinity(),
        },
        "benches": benches,
        "normalized": normalized,
        "baseline_pre_pr": PRE_PR_BASELINE,
    }


def write_report(report: Dict[str, Any], path: str) -> None:
    """Write canonical JSON (sorted keys, 2-space indent, trailing \\n)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, sort_keys=True, indent=2)
        handle.write("\n")


def load_report(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as handle:
        report = json.load(handle)
    if report.get("schema") != SCHEMA:
        raise ValueError(f"{path}: not a {SCHEMA} report "
                         f"(schema={report.get('schema')!r})")
    return report


def check_regression(current: Dict[str, Any], committed: Dict[str, Any],
                     threshold: float = 0.20,
                     benches: Optional[List[str]] = None) -> List[str]:
    """Compare normalized scores; return a list of failure messages.

    A bench fails when its normalized events/sec drops more than
    ``threshold`` below the committed report's normalized score.  Benches
    missing from either side are skipped (a fresh bench has no baseline).
    """
    failures: List[str] = []
    for name in benches if benches is not None else GATED_BENCHES:
        cur = current.get("normalized", {}).get(name)
        ref = committed.get("normalized", {}).get(name)
        if cur is None or ref is None or ref <= 0:
            continue
        ratio = cur / ref
        if ratio < 1.0 - threshold:
            failures.append(
                f"{name}: normalized score {cur:.6f} is "
                f"{(1.0 - ratio) * 100:.1f}% below committed {ref:.6f} "
                f"(threshold {threshold * 100:.0f}%)")
    return failures


def render_report(report: Dict[str, Any]) -> str:
    """Human-readable table of one report (the CLI output)."""
    from ..analysis.reporting import render_table

    rows = []
    for name, bench in sorted(report["benches"].items()):
        rows.append([
            name,
            f"{bench['ops']:,}",
            bench["unit"],
            f"{bench['seconds']:.4f}",
            f"{bench['ops_per_sec']:,.0f}",
            f"{report['normalized'][name]:.4f}",
        ])
    cal = report["host"]["calibration_ops_per_sec"]
    title = (f"repro perf ({'quick' if report.get('quick') else 'full'}; "
             f"calibration {cal:,.0f} ops/s)")
    return render_table(
        ["bench", "ops", "unit", "best s", "ops/s", "normalized"],
        rows, title=title)
