"""repro.perf — the continuous benchmark harness and golden determinism.

Two jobs:

1. Measure: micro benchmarks of the hot paths (engine event throughput,
   condition events, scheduler cascade, epoll wakeup fan-out,
   ``schedule_callback``) and one macro end-to-end LBServer run, written as
   canonical ``BENCH_perf.json`` at the repo root so the perf trajectory is
   tracked commit over commit (``repro perf``).
2. Prove: golden-hash fingerprints of seeded experiments
   (:mod:`repro.perf.golden`) pin the simulator's observable behaviour, so
   every fast-path change is demonstrably bit-identical.
"""

from .golden import (canonical_json, cell_fingerprint, fig13_fingerprint,
                     fingerprint, fleet_fingerprint, sec7_fingerprint)
from .harness import BenchResult, calibrate, run_benchmarks, time_bench
from .report import (build_report, check_regression, load_report,
                     render_report, write_report)

__all__ = [
    "canonical_json",
    "fingerprint",
    "cell_fingerprint",
    "sec7_fingerprint",
    "fig13_fingerprint",
    "fleet_fingerprint",
    "BenchResult",
    "calibrate",
    "time_bench",
    "run_benchmarks",
    "build_report",
    "write_report",
    "load_report",
    "check_regression",
    "render_report",
]
