"""Shuffle sharding and phased overload scaling (Appendix C, case 2).

"Each tenant may purchase one or more L7 LB instances, which are deployed
on VM-based L7 LB devices ... To isolate failures across tenants, cloud
service providers usually adopt shuffle sharding, ensuring that each
tenant's L7 LB instance is deployed on a subset of VMs, which are further
managed in groups."

When node-local scheduling can't absorb a surge, Hermes escalates:

- **Phase 1 — scale out**: spread the overloaded instance across other
  *existing* VM groups.
- **Phase 2 — scale up**: add VMs to the instance's current groups.
- **Phase 3 — new groups**: provision fresh VM groups for the overflow.

Abusive tenants (attack traffic, hang-triggering workloads) are migrated
to an isolated *sandbox* group so they can't degrade anyone else.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

from ..kernel.hash import jhash_words, reciprocal_scale
from ..kernel.tcp import Connection, Request
from ..lb.server import LBServer
from ..sim.engine import Environment
from ..sim.rng import Stream

__all__ = ["VMGroup", "ShuffleShardedFleet", "TenantPlacement"]


@dataclass
class VMGroup:
    """A managed group of LB devices."""

    group_id: int
    devices: List[LBServer] = field(default_factory=list)
    #: Sandbox groups only host quarantined tenants.
    sandbox: bool = False

    @property
    def capacity(self) -> int:
        return sum(d.n_workers for d in self.devices)


@dataclass
class TenantPlacement:
    """Where one tenant's instance currently runs."""

    tenant_id: int
    group_ids: List[int]
    #: Scaling phase already applied (0 = initial placement).
    phase: int = 0
    sandboxed: bool = False


class ShuffleShardedFleet:
    """VM groups + tenant placements + the escalation ladder."""

    def __init__(self, env: Environment, rng: Stream,
                 make_device: Callable[[str], LBServer],
                 n_groups: int = 4, devices_per_group: int = 2,
                 groups_per_tenant: int = 2, hash_seed: int = 0x7a11):
        if n_groups < 1 or devices_per_group < 1:
            raise ValueError("need at least one group and one device")
        if groups_per_tenant < 1 or groups_per_tenant > n_groups:
            raise ValueError("groups_per_tenant out of range")
        self.env = env
        self.rng = rng
        self.make_device = make_device
        self.groups_per_tenant = groups_per_tenant
        self.hash_seed = hash_seed
        self.groups: Dict[int, VMGroup] = {}
        self._next_group_id = 0
        self._next_device = 0
        for _ in range(n_groups):
            self._provision_group(devices_per_group)
        self.placements: Dict[int, TenantPlacement] = {}
        #: connection -> device (per-connection consistency).
        self._conn_device: Dict[int, LBServer] = {}

    # -- provisioning --------------------------------------------------------
    def _new_device(self) -> LBServer:
        self._next_device += 1
        device = self.make_device(f"fleet-dev{self._next_device}")
        device.start()
        return device

    def _provision_group(self, n_devices: int,
                         sandbox: bool = False) -> VMGroup:
        group = VMGroup(group_id=self._next_group_id, sandbox=sandbox)
        self._next_group_id += 1
        for _ in range(n_devices):
            group.devices.append(self._new_device())
        self.groups[group.group_id] = group
        return group

    # -- placement --------------------------------------------------------------
    def place_tenant(self, tenant_id: int) -> TenantPlacement:
        """Shuffle sharding: a random subset of non-sandbox groups."""
        if tenant_id in self.placements:
            return self.placements[tenant_id]
        candidates = [g.group_id for g in self.groups.values()
                      if not g.sandbox]
        chosen = self.rng.sample(candidates,
                                 min(self.groups_per_tenant,
                                     len(candidates)))
        placement = TenantPlacement(tenant_id=tenant_id,
                                    group_ids=sorted(chosen))
        self.placements[tenant_id] = placement
        return placement

    def devices_for(self, tenant_id: int) -> List[LBServer]:
        placement = self.placements.get(tenant_id)
        if placement is None:
            placement = self.place_tenant(tenant_id)
        devices: List[LBServer] = []
        for group_id in placement.group_ids:
            devices.extend(self.groups[group_id].devices)
        return devices

    def overlap(self, tenant_a: int, tenant_b: int) -> float:
        """Shared-device fraction between two tenants (the shuffle-
        sharding isolation metric: small overlap = small blast radius)."""
        a = set(id(d) for d in self.devices_for(tenant_a))
        b = set(id(d) for d in self.devices_for(tenant_b))
        union = a | b
        return len(a & b) / len(union) if union else 0.0

    # -- traffic -----------------------------------------------------------------
    def connect(self, connection: Connection) -> bool:
        devices = self.devices_for(connection.tenant_id)
        if not devices:
            connection.reset("tenant has no devices")
            return False
        flow_hash = jhash_words(
            [connection.four_tuple.src_ip & 0xFFFFFFFF,
             connection.four_tuple.src_port & 0xFFFF,
             connection.tenant_id & 0xFFFFFFFF], self.hash_seed)
        device = devices[reciprocal_scale(flow_hash, len(devices))]
        accepted = device.connect(connection)
        if accepted:
            self._conn_device[connection.id] = device
        return accepted

    def deliver(self, connection: Connection, request: Request) -> None:
        device = self._conn_device.get(connection.id)
        if device is None:
            raise KeyError(f"unknown connection {connection.id}")
        device.deliver(connection, request)

    # -- the escalation ladder --------------------------------------------------
    def tenant_capacity(self, tenant_id: int) -> int:
        return sum(d.n_workers for d in self.devices_for(tenant_id))

    def handle_overload(self, tenant_id: int,
                        devices_per_step: int = 1) -> int:
        """Apply the next escalation phase; returns the phase executed."""
        placement = self.placements.get(tenant_id)
        if placement is None:
            raise KeyError(f"tenant {tenant_id} has no placement")
        placement.phase += 1
        phase = min(placement.phase, 3)
        if phase == 1:
            # Scale out: join other existing (non-sandbox) groups.
            others = [g.group_id for g in self.groups.values()
                      if not g.sandbox
                      and g.group_id not in placement.group_ids]
            take = others[:devices_per_step] if others else []
            placement.group_ids.extend(take)
            placement.group_ids.sort()
        elif phase == 2:
            # Scale up: add VMs to the tenant's existing groups.
            for group_id in placement.group_ids[:devices_per_step]:
                self.groups[group_id].devices.append(self._new_device())
        else:
            # Phase 3: provision a brand-new group for the overflow.
            group = self._provision_group(devices_per_step)
            placement.group_ids.append(group.group_id)
        return phase

    # -- sandbox isolation ---------------------------------------------------------
    def migrate_to_sandbox(self, tenant_id: int,
                           sandbox_devices: int = 1) -> VMGroup:
        """Quarantine an abusive tenant on dedicated sandbox devices.

        Existing connections stay where they are (affinity); new ones land
        only on the sandbox.
        """
        sandbox = next((g for g in self.groups.values() if g.sandbox),
                       None)
        if sandbox is None:
            sandbox = self._provision_group(sandbox_devices, sandbox=True)
        placement = self.placements.get(tenant_id)
        if placement is None:
            placement = self.place_tenant(tenant_id)
        placement.group_ids = [sandbox.group_id]
        placement.sandboxed = True
        return sandbox

    @property
    def total_devices(self) -> int:
        return sum(len(g.devices) for g in self.groups.values())
