"""Cluster layer: multi-device LB clusters, canary releases, autoscaling."""

from .autoscale import AutoscaleModel, UnitCostPoint, unit_cost_series
from .canary import CanaryRelease
from .cluster import LBCluster
from .sharding import ShuffleShardedFleet, TenantPlacement, VMGroup

__all__ = [
    "AutoscaleModel",
    "CanaryRelease",
    "LBCluster",
    "ShuffleShardedFleet",
    "TenantPlacement",
    "UnitCostPoint",
    "VMGroup",
    "unit_cost_series",
]
