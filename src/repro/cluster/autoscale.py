"""Autoscaling policy and the unit-cost model (§6.2, Fig. 12).

Before Hermes, hang-driven overload forced a conservative safety threshold:
"we scaled out more LBs whenever CPU utilization exceeded 30%".  After
Hermes eliminated hung workers the threshold rose to 40%, so the same
traffic needs fewer VMs.  Fig. 12 reports *unit cost* — total infra cost
divided by total traffic, normalized — which fell month over month as the
fleet converted, peaking at an 18.9% reduction.

The model: a device of ``n_cores`` serves ``threshold × capacity`` of CPU
demand; the fleet size is the ceiling of demand over that.  A VM's cost has
a utilization-independent component (``fixed_share``: memory, licenses,
network ports) which caps how much a threshold change can save — this is
why the measured 18.9% is below the naive 1 − 30/40 = 25%.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

__all__ = ["AutoscaleModel", "UnitCostPoint", "unit_cost_series"]


@dataclass(frozen=True)
class UnitCostPoint:
    """One month's fleet sizing and unit cost."""

    month: int
    traffic: float
    fraction_hermes: float
    devices: int
    unit_cost: float


@dataclass(frozen=True)
class AutoscaleModel:
    """Fleet sizing under a CPU safety threshold."""

    #: CPU-seconds of worker time demanded per unit of traffic.
    cpu_per_traffic_unit: float = 1.0
    #: Cores per LB device.
    n_cores: int = 32
    #: Cost of one device per month (arbitrary unit).
    device_cost: float = 1.0
    #: Share of device cost that does not scale with the threshold.
    fixed_share: float = 0.25
    #: Safety thresholds before/after Hermes.
    threshold_before: float = 0.30
    threshold_after: float = 0.40

    def __post_init__(self):
        if not 0 < self.threshold_before <= self.threshold_after <= 1:
            raise ValueError("need 0 < before <= after <= 1")
        if not 0 <= self.fixed_share < 1:
            raise ValueError("fixed_share must be in [0, 1)")

    def effective_threshold(self, fraction_hermes: float) -> float:
        """Fleet-average threshold during a mixed rollout."""
        if not 0 <= fraction_hermes <= 1:
            raise ValueError("fraction_hermes must be in [0, 1]")
        return (self.threshold_before * (1 - fraction_hermes)
                + self.threshold_after * fraction_hermes)

    def devices_needed(self, traffic: float,
                       fraction_hermes: float = 0.0) -> int:
        """Fleet size to keep every device below the safety threshold."""
        if traffic < 0:
            raise ValueError("traffic must be >= 0")
        threshold = self.effective_threshold(fraction_hermes)
        capacity_per_device = threshold * self.n_cores
        demand = traffic * self.cpu_per_traffic_unit
        return max(1, math.ceil(demand / capacity_per_device))

    def unit_cost(self, traffic: float,
                  fraction_hermes: float = 0.0) -> float:
        """Infra cost per unit traffic.

        The threshold only discounts the variable cost share; the fixed
        share of a device's cost is paid per unit of *CPU demand* hosted
        (memory and port capacity scale with traffic, not with how much
        CPU headroom policy demands).
        """
        if traffic <= 0:
            raise ValueError("traffic must be positive")
        devices = self.devices_needed(traffic, fraction_hermes)
        variable_cost = devices * self.device_cost * (1 - self.fixed_share)
        baseline_devices = self.devices_needed(traffic, 0.0)
        fixed_cost = baseline_devices * self.device_cost * self.fixed_share
        return (variable_cost + fixed_cost) / traffic

    def max_reduction(self, traffic: float = 1e6) -> float:
        """Peak fractional unit-cost reduction at full conversion."""
        before = self.unit_cost(traffic, 0.0)
        after = self.unit_cost(traffic, 1.0)
        return (before - after) / before


def unit_cost_series(model: AutoscaleModel,
                     monthly_traffic: Sequence[float],
                     rollout_fraction: Sequence[float]) -> List[UnitCostPoint]:
    """Fig. 12: normalized unit cost per month over a rollout.

    ``rollout_fraction[m]`` is the Hermes share of the fleet in month m.
    """
    if len(monthly_traffic) != len(rollout_fraction):
        raise ValueError("series lengths must match")
    points = []
    for month, (traffic, frac) in enumerate(
            zip(monthly_traffic, rollout_fraction)):
        points.append(UnitCostPoint(
            month=month,
            traffic=traffic,
            fraction_hermes=frac,
            devices=model.devices_needed(traffic, frac),
            unit_cost=model.unit_cost(traffic, frac),
        ))
    return points
