"""An L7 LB cluster behind an L4 spray layer (§6.1).

The evaluation cluster holds 8 LBs "for load sharing and failure recovery";
the L4 LB sprays new connections across devices by flow hash with
per-connection consistency (established connections stay put).  Draining a
device (canary rollout, failure replacement) removes it from new-connection
selection while its existing connections run out.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..kernel.tcp import Connection, Request
from ..lb.server import LBServer
from ..sim.engine import Environment

__all__ = ["LBCluster"]


class LBCluster:
    """A set of LB devices fed by flow-hash spraying.

    The spray itself is a pluggable ingress policy (``repro.fleet.ingress``);
    the default :class:`~repro.fleet.EcmpIngress` reproduces the historical
    inline flow-hash modulo bit-for-bit.
    """

    def __init__(self, env: Environment, devices: List[LBServer],
                 hash_seed: int = 0x5eed, ingress=None):
        if not devices:
            raise ValueError("need at least one device")
        if ingress is None:
            # Lazy import: repro.fleet builds on repro.cluster.
            from ..fleet.ingress import EcmpIngress
            ingress = EcmpIngress(hash_seed)
        self.ingress = ingress
        self.env = env
        self.hash_seed = hash_seed
        self.devices: List[LBServer] = list(devices)
        self._draining: Dict[LBServer, float] = {}
        #: connection -> owning device (per-connection consistency).
        self._conn_device: Dict[int, LBServer] = {}
        self.total_connections = 0

    # -- membership -------------------------------------------------------
    @property
    def active_devices(self) -> List[LBServer]:
        return [d for d in self.devices if d not in self._draining]

    def add_device(self, device: LBServer) -> None:
        if device in self.devices:
            raise ValueError("device already in cluster")
        self.devices.append(device)

    def drain_device(self, device: LBServer) -> None:
        """Stop sending new connections to a device; existing ones stay."""
        if device not in self.devices:
            raise ValueError("device not in cluster")
        self._draining[device] = self.env.now

    def is_draining(self, device: LBServer) -> bool:
        return device in self._draining

    def remove_device(self, device: LBServer) -> int:
        """Remove a (drained) device; returns its residual connections."""
        self.devices.remove(device)
        self._draining.pop(device, None)
        residual = sum(len(w.conns) for w in device.workers)
        return residual

    def device_drained(self, device: LBServer) -> bool:
        """True when no worker on the device holds connections anymore."""
        return all(len(w.conns) == 0 for w in device.workers)

    # -- traffic entry ------------------------------------------------------
    def connect(self, connection: Connection) -> bool:
        """Spray a new connection to an active device by flow hash."""
        active = self.active_devices
        if not active:
            connection.reset("no active devices")
            return False
        device = self.ingress.pick(connection.four_tuple, active)
        accepted = device.connect(connection)
        if accepted:
            self._conn_device[connection.id] = device
            self.total_connections += 1
        return accepted

    def deliver(self, connection: Connection, request: Request) -> None:
        """Route data to the device owning this connection."""
        device = self._conn_device.get(connection.id)
        if device is None:
            raise KeyError(f"unknown connection {connection.id}")
        device.deliver(connection, request)

    def device_for(self, connection: Connection) -> Optional[LBServer]:
        return self._conn_device.get(connection.id)

    # -- aggregate metrics --------------------------------------------------
    def _total_completed(self) -> int:
        return sum(d.metrics.requests_completed for d in self.devices)

    def _cluster_throughput(self) -> float:
        return sum(d.metrics.throughput() for d in self.devices)


def _install_deprecated_aggregates() -> None:
    """Shim the legacy aggregate helpers through the standard pattern.

    ``repro.fleet.aggregate_metrics`` pools latency samples across devices
    (a sum of per-device throughputs hid the elapsed-time mismatch these
    helpers had); direct calls keep working but warn.
    """
    from ..experiments.registry import deprecated
    LBCluster.total_completed = deprecated(
        LBCluster._total_completed,
        "repro.fleet.aggregate_metrics(cluster.devices)['completed']")
    LBCluster.cluster_throughput = deprecated(
        LBCluster._cluster_throughput,
        "repro.fleet.aggregate_metrics(cluster.devices)['throughput_rps']")


_install_deprecated_aggregates()
