"""Canary release of Hermes into a running cluster (§6.2, Fig. 11).

"During the rollout, new-version VMs with Hermes are gradually added to the
L7 LB cluster, while old-version VMs are phased out.  Once a VM is removed,
it no longer handles new connections, but existing connections continue to
transmit packets until the traffic on that VM fully drains."

The drain tail depends on client type: mobile clients drop connections
quickly; IoT/cloud clients hold them for a long time — in Region1 probes
kept reaching old VMs for 11 days.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..lb.server import LBServer
from ..sim.engine import Environment, Interrupt
from .cluster import LBCluster

__all__ = ["CanaryRelease"]


class CanaryRelease:
    """Replaces old-version devices with new-version ones, batch by batch."""

    def __init__(self, env: Environment, cluster: LBCluster,
                 old_devices: List[LBServer],
                 make_new_device: Callable[[int], LBServer],
                 batch_size: int = 1, batch_interval: float = 1.0,
                 drain_poll: float = 0.5):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.env = env
        self.cluster = cluster
        self.remaining_old = list(old_devices)
        self.make_new_device = make_new_device
        self.batch_size = batch_size
        self.batch_interval = batch_interval
        self.drain_poll = drain_poll
        # -- state / stats -------------------------------------------------
        self.new_devices: List[LBServer] = []
        self.draining: List[LBServer] = []
        self.retired: List[LBServer] = []
        self.started_at: Optional[float] = None
        self.completed_at: Optional[float] = None
        self._proc = None

    def start(self) -> None:
        self.started_at = self.env.now
        self._proc = self.env.process(self._run(), name="canary")

    @property
    def rollout_complete(self) -> bool:
        """All old devices out of rotation (drain may still be running)."""
        return not self.remaining_old and not self.draining \
            and self.completed_at is not None

    @property
    def fraction_new(self) -> float:
        """Share of active (non-draining) devices running the new version."""
        active = self.cluster.active_devices
        if not active:
            return 0.0
        return sum(1 for d in active if d in self.new_devices) / len(active)

    def _run(self):
        try:
            batch_index = 0
            while self.remaining_old:
                batch = self.remaining_old[:self.batch_size]
                del self.remaining_old[:self.batch_size]
                for old in batch:
                    new = self.make_new_device(batch_index)
                    new.start()
                    self.cluster.add_device(new)
                    self.new_devices.append(new)
                    self.cluster.drain_device(old)
                    self.draining.append(old)
                    batch_index += 1
                yield self.env.timeout(self.batch_interval)
            # Wait for every draining device to empty, then retire it.
            while self.draining:
                yield self.env.timeout(self.drain_poll)
                for old in list(self.draining):
                    if self.cluster.device_drained(old):
                        self.cluster.remove_device(old)
                        self.draining.remove(old)
                        self.retired.append(old)
            self.completed_at = self.env.now
        except Interrupt:
            return
