"""repro.prequal — probe-based, latency-aware scheduling (Google Prequal).

The third architecture in the repo's head-to-head: where EXCLUSIVE is
load-oblivious kernel wakeup and HERMES is userspace-directed notification
from exact load state, PREQUAL balances on *probed* signals — asynchronous
probes carrying requests-in-flight (RIF) and estimated latency, selected
power-of-d style with hot/cold lane classification and anti-herding pool
hygiene (remove-on-use + max-age eviction).

Wiring mirrors Hermes: per-worker reuseport sockets plus a dispatch
program attached to every port's reuseport group.  Design deltas from the
paper are documented in ``docs/API.md``.
"""

from __future__ import annotations

import hashlib

from ..sim.rng import Stream
from .config import POLICIES, PrequalConfig, config_from_overrides
from .dispatch import PrequalDispatchProgram, PrequalState
from .pool import ProbePool, ProbeSample
from .probes import PrequalProber
from .selector import PrequalDecision, PrequalSelector

__all__ = [
    "POLICIES", "PrequalConfig", "config_from_overrides",
    "ProbePool", "ProbeSample",
    "PrequalDecision", "PrequalSelector",
    "PrequalProber", "PrequalDispatchProgram", "PrequalState",
    "build_prequal",
]


def build_prequal(env, server, config: PrequalConfig,
                  tracer=None) -> PrequalState:
    """Assemble the PREQUAL subsystem for one LB device.

    The prober's sampling stream is derived from the device's hash seed
    and name the same way :class:`repro.sim.rng.RngRegistry` derives named
    streams, so probe schedules are reproducible and independent of every
    traffic stream.
    """
    pool = ProbePool(capacity=config.pool_size, max_age=config.max_age,
                     reuse_budget=config.reuse_budget)
    selector = PrequalSelector(pool, config)
    digest = hashlib.sha256(
        f"prequal:{server.stack.hash_seed}:{server.name}".encode()).digest()
    rng = Stream(int.from_bytes(digest[:8], "big"),
                 name=f"{server.name}.prequal")
    prober = PrequalProber(env, server, pool, config, rng, tracer=tracer)
    program = PrequalDispatchProgram(
        selector, clock=lambda: env.now, n_workers=server.n_workers,
        prober=prober, tracer=tracer)
    return PrequalState(config=config, pool=pool, selector=selector,
                        prober=prober, program=program)
