"""The Prequal dispatch program: pool-driven SYN routing.

Implements the kernel's :class:`~repro.kernel.reuseport.SocketSelector`
protocol, the same attachment point Hermes's eBPF program uses — but where
Hermes consults the WST cascade's precomputed schedule, this consults the
probe pool's hot/cold-lane selector.  An empty (or fully stale) pool
declines the decision and the reuseport group falls back to stateless
hashing, so the device degrades to plain REUSEPORT rather than stalling.

Like Hermes's ``REUSEPORT_SOCKARRAY``, the program maps worker ids to
member-socket indices.  Sockets are bound in worker order on every port
(index == worker id) and crash+restart appends fresh sockets while
tombstoning old ones, so :meth:`repoint` keeps the mapping stable across
the §7 incident lifecycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..kernel.reuseport import ReuseportContext
from .config import PrequalConfig
from .pool import ProbePool
from .selector import PrequalSelector

__all__ = ["PrequalDispatchProgram", "PrequalState"]


class PrequalDispatchProgram:
    """Routes each SYN via the probe pool (SocketSelector protocol)."""

    def __init__(self, selector: PrequalSelector, clock, n_workers: int,
                 prober=None, tracer=None):
        self.selector = selector
        self.clock = clock
        self.prober = prober
        self.tracer = tracer
        #: worker id -> member-socket index (bind order makes them equal
        #: until a crash+restart appends a fresh socket).
        self._sock_index: List[int] = list(range(n_workers))
        # -- statistics -----------------------------------------------------
        self.selections = 0
        self.fallbacks = 0

    def repoint(self, worker_id: int, index: int) -> None:
        """Re-pin a restarted worker to its fresh member-socket index."""
        self._sock_index[worker_id] = index

    def run(self, ctx: ReuseportContext) -> Optional[int]:
        decision = self.selector.select(self.clock())
        if self.prober is not None:
            # Reactive pool replenishment (probe-per-query); after the
            # selection so this decision never observes its own probes.
            self.prober.on_dispatch()
        if decision is None:
            self.fallbacks += 1
            if self.tracer is not None:
                self.tracer.instant("prequal.fallback", "prequal",
                                    hash=ctx.hash)
            return None
        self.selections += 1
        if self.tracer is not None:
            self.tracer.instant("prequal.select", "prequal",
                                worker=decision.worker_id, lane=decision.lane,
                                rif=decision.rif, latency=decision.latency,
                                pool=decision.pool_depth)
        return self._sock_index[decision.worker_id]


@dataclass
class PrequalState:
    """Everything the PREQUAL mode hangs off an :class:`LBServer`."""

    config: PrequalConfig
    pool: ProbePool
    selector: PrequalSelector
    prober: object
    program: PrequalDispatchProgram

    def stats(self) -> dict:
        """One flat dict for run summaries and invariant checks."""
        out = dict(self.pool.stats())
        out.update(
            decisions=self.selector.decisions,
            cold_picks=self.selector.cold_picks,
            hot_picks=self.selector.hot_picks,
            empty_pool=self.selector.empty_pool,
            selections=self.program.selections,
            fallbacks=self.program.fallbacks,
            probes_sent=self.prober.report.sent,
            probes_completed=self.prober.report.completed,
            probes_throttled=self.prober.throttled,
        )
        return out
