"""The probe pool: asynchronously harvested (RIF, latency) replies.

Every probe reply that completes lands here as a :class:`ProbeSample`;
the selector consumes samples per the reuse budget and the pool evicts
by age and capacity.  The pool keeps a strict ledger — every sample that
ever entered is either consumed, evicted, or still pooled::

    issued == consumed + evicted + len(entries)

which is exactly the conservation invariant ``repro.check`` re-derives on
live runs (:meth:`ProbePool.conserved`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

__all__ = ["ProbeSample", "ProbePool"]


@dataclass
class ProbeSample:
    """One harvested probe reply."""

    worker_id: int
    #: Requests in flight on the worker when the probe reply was formed.
    rif: int
    #: Estimated latency: the probe's own measured sojourn time.
    latency: float
    #: Sim time the reply entered the pool.
    t: float
    #: Selections this sample may still serve (counts down to removal).
    uses_left: int = 1


class ProbePool:
    """Bounded, age-limited pool of probe replies for one LB device."""

    def __init__(self, capacity: int, max_age: float,
                 reuse_budget: int = 1):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if max_age <= 0:
            raise ValueError("max_age must be positive")
        if reuse_budget < 1:
            raise ValueError("reuse_budget must be >= 1")
        self.capacity = capacity
        self.max_age = max_age
        self.reuse_budget = reuse_budget
        #: Pooled samples in arrival order (oldest first).
        self.entries: List[ProbeSample] = []
        # -- the conservation ledger ---------------------------------------
        #: Samples that ever entered the pool.
        self.issued = 0
        #: Samples removed because their reuse budget ran out.
        self.consumed = 0
        #: Samples removed by age or capacity displacement.
        self.evicted = 0

    def __len__(self) -> int:
        return len(self.entries)

    def add(self, worker_id: int, rif: int, latency: float,
            now: float) -> ProbeSample:
        """Pool a fresh reply, displacing the oldest entry at capacity."""
        sample = ProbeSample(worker_id=worker_id, rif=rif, latency=latency,
                             t=now, uses_left=self.reuse_budget)
        self.entries.append(sample)
        self.issued += 1
        if len(self.entries) > self.capacity:
            self.entries.pop(0)
            self.evicted += 1
        return sample

    def evict_stale(self, now: float) -> int:
        """Drop samples older than ``max_age``; returns how many."""
        cutoff = now - self.max_age
        keep = [s for s in self.entries if s.t >= cutoff]
        dropped = len(self.entries) - len(keep)
        if dropped:
            self.entries = keep
            self.evicted += dropped
        return dropped

    def use(self, sample: ProbeSample) -> None:
        """Charge one selection against ``sample``'s reuse budget."""
        sample.uses_left -= 1
        if sample.uses_left <= 0:
            self.entries.remove(sample)
            self.consumed += 1

    def conserved(self) -> bool:
        """The ledger invariant: issued == consumed + evicted + in-pool."""
        return self.issued == self.consumed + self.evicted + len(self.entries)

    def snapshot(self) -> List[tuple]:
        """``(worker_id, rif, latency, t)`` tuples — for oracles/tests."""
        return [(s.worker_id, s.rif, s.latency, s.t) for s in self.entries]

    def stats(self) -> dict:
        return {"issued": self.issued, "consumed": self.consumed,
                "evicted": self.evicted, "in_pool": len(self.entries)}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<ProbePool {len(self.entries)}/{self.capacity} "
                f"issued={self.issued} consumed={self.consumed} "
                f"evicted={self.evicted}>")
