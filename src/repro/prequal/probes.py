"""Prequal probe transport: seeded, rate-limited RIF/latency probes.

Rides the :class:`repro.lb.probes.Prober` machinery (persistent per-worker
probe connections delivered through the normal worker event loop), so probe
replies inherit every pathology the paper cares about: a hung worker delays
its replies, a crashed worker loses them, and replies queue behind real
work — which is exactly what makes the reply's own sojourn time a usable
latency estimate.

Each completed probe reply carries two signals into the
:class:`~repro.prequal.pool.ProbePool`:

- **RIF** — the worker's requests-in-flight at reply time (client events
  delivered but not yet processed; probe traffic excluded);
- **estimated latency** — the probe's own end-to-end sojourn on the sim
  clock.

Probing is *reactive* (a pool refresh per dispatch, per the Prequal
paper's probe-per-query design) plus a slow background round to keep the
pool warm on idle devices; both draw from one token bucket capped at
``probe_rate``/``probe_burst`` so probe load cannot melt the backend.
Target workers are drawn power-of-d style from a dedicated seeded stream,
keeping the probe schedule byte-reproducible and independent of the
traffic streams.
"""

from __future__ import annotations

from typing import Optional

from ..kernel.tcp import Request
from ..lb.probes import Prober
from ..sim.engine import Interrupt
from .config import PrequalConfig
from .pool import ProbePool

__all__ = ["PrequalProber"]


class PrequalProber(Prober):
    """Issues pool-feeding probes to ``d`` sampled workers at a time."""

    def __init__(self, env, server, pool: ProbePool, config: PrequalConfig,
                 rng, tracer=None):
        super().__init__(env, server, interval=config.probe_interval)
        self.pool = pool
        self.config = config
        #: Dedicated seeded stream (worker sampling only) — probe targeting
        #: never perturbs the traffic streams.
        self.rng = rng
        self.tracer = tracer
        #: Probes suppressed by the rate limiter.
        self.throttled = 0
        self._tokens = float(config.probe_burst)
        self._last_refill = env.now

    # -- rate limiting -----------------------------------------------------
    def _take_token(self) -> bool:
        now = self.env.now
        elapsed = now - self._last_refill
        if elapsed > 0:
            self._tokens = min(float(self.config.probe_burst),
                               self._tokens + elapsed * self.config.probe_rate)
            self._last_refill = now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    # -- probe issue -------------------------------------------------------
    def probe_round(self) -> int:
        """Probe ``d`` distinct sampled workers; returns probes issued."""
        n = self.server.n_workers
        targets = self.rng.sample(range(n), min(self.config.d, n))
        issued = 0
        for worker_id in targets:
            if not self._take_token():
                self.throttled += len(targets) - issued
                break
            self._send_probe(worker_id)
            issued += 1
        return issued

    def on_dispatch(self) -> None:
        """Reactive replenishment: one refresh round per routing decision."""
        self._harvest()
        self.probe_round()

    def _run(self):
        # Background refresh: unlike the base prober this samples d workers
        # per round instead of sweeping all of them.
        try:
            while True:
                yield self.env.timeout(self.interval)
                self._harvest()
                self.probe_round()
        except Interrupt:
            self._harvest()
            return

    # -- reply harvesting --------------------------------------------------
    def _build_probe(self, worker_id: int) -> Request:
        probe = super()._build_probe(worker_id)
        probe.handler = "prequal_probe"
        probe.on_complete = lambda request: self._pool_reply(worker_id,
                                                             request)
        return probe

    def _pool_reply(self, worker_id: int, request: Request) -> None:
        """A probe reply completed on its worker: pool its signals."""
        worker = self.server.workers[worker_id]
        if not worker.is_alive:
            return
        rif = worker.requests_in_flight
        latency = request.latency if request.latency is not None else 0.0
        self.pool.add(worker_id, rif, latency, self.env.now)
        if self.tracer is not None:
            self.tracer.instant("prequal.sample", "prequal",
                                worker=worker_id, rif=rif, latency=latency,
                                pool=len(self.pool))
