"""Tunables of the Prequal scheduling subsystem.

Defaults follow the Prequal paper's published operating point where the
simulation has an equivalent knob: probes are pooled (16 entries), replies
are removed on use (reuse budget 1) and evicted by age, and the hot/cold
classification threshold sits at a high RIF quantile so only the most
loaded replicas land in the hot lane.  Deltas from the paper are noted on
each field and summarized in ``docs/API.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Mapping

from ..core import tunables as _tunables

__all__ = ["PrequalConfig", "config_from_overrides"]

#: Selection policies: the paper's hot/cold lane rule plus the two single-
#: signal ablations it argues against.
POLICIES = ("hcl", "latency", "rif")


@dataclass(frozen=True)
class PrequalConfig:
    """Tunables of the probe-based, latency-aware scheduler."""

    #: Probes issued per replenishment decision (the paper's power-of-d
    #: sampling; it recommends small d with probe reuse).
    d: int = 3
    #: Maximum pooled probe replies per LB.
    pool_size: int = 16
    #: Staleness bound: pooled replies older than this are evicted
    #: (anti-herding — stale low-RIF replies cause synchronized dogpiles).
    max_age: float = 0.4
    #: RIF quantile splitting hot from cold: a reply whose RIF is at or
    #: above the ``q_hot`` quantile of pooled RIFs is hot.
    q_hot: float = 0.84
    #: Selections one pooled reply may serve before removal
    #: (1 = remove-on-use, the paper's default).
    reuse_budget: int = 1
    #: Token-bucket ceiling on the probe rate (probes per second).  Probes
    #: are near-free (10 µs of worker CPU), and the paper issues probes per
    #: query, so the ceiling must sit above the expected dispatch rate —
    #: a starved pool degrades every decision to the hash fallback.
    probe_rate: float = 60000.0
    #: Token-bucket burst (probes that may be issued back-to-back).
    probe_burst: int = 64
    #: Background refresh period: every interval the prober samples ``d``
    #: workers, keeping the pool warm even when no queries arrive.
    probe_interval: float = 0.02
    #: Selection policy: ``"hcl"`` (hot/cold lanes), or the single-signal
    #: ablations ``"latency"`` / ``"rif"``.
    policy: str = "hcl"

    def __post_init__(self):
        if self.d < 1:
            raise ValueError("d must be >= 1")
        if self.pool_size < 1:
            raise ValueError("pool_size must be >= 1")
        if self.max_age <= 0:
            raise ValueError("max_age must be positive")
        if not 0.0 < self.q_hot <= 1.0:
            raise ValueError("q_hot must be in (0, 1]")
        if self.reuse_budget < 1:
            raise ValueError("reuse_budget must be >= 1")
        if self.probe_rate <= 0:
            raise ValueError("probe_rate must be positive")
        if self.probe_burst < 1:
            raise ValueError("probe_burst must be >= 1")
        if self.probe_interval <= 0:
            raise ValueError("probe_interval must be positive")
        if self.policy not in POLICIES:
            raise ValueError(f"policy must be one of {POLICIES}")

    def with_overrides(self, **kwargs) -> "PrequalConfig":
        """A copy with some fields replaced (sweep helper)."""
        return replace(self, **kwargs)

    def tunables(self) -> dict:
        """Field -> value, for ``repro list`` metadata and run summaries."""
        return _tunables.tunable_values(self)


def config_from_overrides(overrides: Mapping[str, Any]) -> PrequalConfig:
    """Build a config from ``--set KEY=VALUE`` pairs, rejecting unknowns.

    String values (what the CLI hands over) are coerced to the field's
    declared type; typed values (experiment override dicts) pass through.
    The shared coercion lives in :mod:`repro.core.tunables`.
    """
    return _tunables.config_from_overrides(PrequalConfig, overrides,
                                           label="prequal")
