"""Hot/cold-lane selection over the probe pool.

The selection contract (shared with the naive oracle in
:mod:`repro.check.oracles`, which re-derives every decision on ``--check``
runs):

1. Evict stale samples (older than ``max_age``), then read the pool.
   An empty pool returns ``None`` — the dispatch program declines and the
   kernel falls back to reuseport hashing.
2. Compute the hot threshold: the ``q_hot`` quantile of pooled RIFs,
   taken as ``sorted_rifs[min(n - 1, floor(q_hot * n))]``.  A sample is
   *hot* when ``rif > threshold`` (strictly above the quantile — at a
   uniform pool nothing is hot and HCL degrades to pure latency picking,
   which is the paper's intended low-load behaviour), *cold* otherwise.
3. Pick the cold sample with the lowest estimated latency (ties: lower
   RIF, then lower worker id).  If every sample is hot, fall back to the
   lowest-RIF hot sample (ties: lower latency, then lower worker id).
4. Charge the winning sample's reuse budget.

The single-signal ablation policies skip step 2: ``"latency"`` picks the
global latency minimum, ``"rif"`` the global RIF minimum, with the same
tie-break chains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .config import PrequalConfig
from .pool import ProbePool, ProbeSample

__all__ = ["PrequalDecision", "PrequalSelector"]


@dataclass(frozen=True)
class PrequalDecision:
    """One routing decision derived from the pool."""

    worker_id: int
    #: ``"cold"`` or ``"hot"`` (ablation policies report their own name).
    lane: str
    rif: int
    latency: float
    #: Pool depth at decision time (after stale eviction, before use).
    pool_depth: int


class PrequalSelector:
    """Turns the probe pool into routing decisions."""

    def __init__(self, pool: ProbePool, config: PrequalConfig):
        self.pool = pool
        self.config = config
        # -- statistics -----------------------------------------------------
        self.decisions = 0
        self.cold_picks = 0
        self.hot_picks = 0
        self.empty_pool = 0

    def select(self, now: float) -> Optional[PrequalDecision]:
        """One decision per incoming SYN; ``None`` when the pool is dry."""
        self.pool.evict_stale(now)
        entries = self.pool.entries
        if not entries:
            self.empty_pool += 1
            return None
        depth = len(entries)
        policy = self.config.policy
        if policy == "latency":
            best, lane = self._min_latency(entries), "latency"
        elif policy == "rif":
            best, lane = self._min_rif(entries), "rif"
        else:
            best, lane = self._hcl(entries)
        self.pool.use(best)
        self.decisions += 1
        if lane == "hot":
            self.hot_picks += 1
        else:
            self.cold_picks += 1
        return PrequalDecision(
            worker_id=best.worker_id, lane=lane, rif=best.rif,
            latency=best.latency, pool_depth=depth)

    # -- policies ----------------------------------------------------------
    def _hcl(self, entries):
        threshold = self.hot_threshold(entries)
        cold = [s for s in entries if s.rif <= threshold]
        if cold:
            return self._min_latency(cold), "cold"
        return self._min_rif(entries), "hot"

    def hot_threshold(self, entries) -> int:
        """The ``q_hot`` RIF quantile of the given samples."""
        rifs = sorted(s.rif for s in entries)
        index = min(len(rifs) - 1, int(self.config.q_hot * len(rifs)))
        return rifs[index]

    @staticmethod
    def _min_latency(entries) -> ProbeSample:
        return min(entries, key=lambda s: (s.latency, s.rif, s.worker_id))

    @staticmethod
    def _min_rif(entries) -> ProbeSample:
        return min(entries, key=lambda s: (s.rif, s.latency, s.worker_id))
