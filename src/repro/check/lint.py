"""Nondeterminism linter: an AST pass over the simulation sources.

The whole repo rests on seeded, bit-identical runs; the golden hashes can
only catch nondeterminism *after* it ships.  This linter catches the three
ways it usually sneaks in, at review time:

- ``unseeded-random`` — ``random.Random()`` with no seed, or any call into
  the module-global RNG (``random.random()``, ``random.choice`` …), whose
  state is shared across the process and ruined by import order.
- ``wall-clock`` — ``time.time()`` / ``monotonic()`` / ``perf_counter()``
  / ``datetime.now()``: real time leaking into a simulated clock.
- ``unordered-iteration`` — iterating a ``set`` (literal, ``set()`` call,
  or an attribute annotated ``Set[...]``) anywhere, or ``.keys()`` /
  ``.values()`` / ``.items()`` inside a function whose name marks it as a
  scheduling or merge decision (``select``, ``merge``, ``dispatch`` …).
  Set order is salted per process; feeding it into a decision makes the
  decision unreproducible.

Findings are suppressed by ``allowlist.txt`` (same directory), one
``fnmatch`` pattern per line matched against ``path:rule:qualname`` — the
reviewed-and-deliberate cases, each with a comment saying why.
"""

from __future__ import annotations

import ast
import fnmatch
import re
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

__all__ = [
    "Finding",
    "lint_source",
    "lint_paths",
    "load_allowlist",
    "default_allowlist_path",
    "RULES",
]

RULES = {
    "unseeded-random":
        "module-global or seedless RNG (state not controlled by the run)",
    "wall-clock":
        "real-time clock call inside simulated code",
    "unordered-iteration":
        "set/dict iteration order feeding a scheduling or merge decision",
}

#: Function names that mark scheduling / merge decision points.
_DECISION_RE = re.compile(
    r"sched|select|merge|dispatch|choose|pick|route|assign|balanc", re.I)

_GLOBAL_RNG_FNS = frozenset({
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "expovariate", "betavariate", "seed",
    "getrandbits", "triangular", "paretovariate",
})
_WALL_CLOCK_TIME_FNS = frozenset({
    "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
    "perf_counter_ns", "process_time",
})
_WALL_CLOCK_DATETIME_FNS = frozenset({"now", "utcnow", "today"})


@dataclass(frozen=True)
class Finding:
    path: str
    line: int
    rule: str
    qualname: str
    message: str

    @property
    def key(self) -> str:
        """The string allowlist patterns match against."""
        return f"{self.path}:{self.rule}:{self.qualname}"

    def __str__(self) -> str:
        return (f"{self.path}:{self.line}: [{self.rule}] {self.message} "
                f"(in {self.qualname})")


def _annotation_is_set(node: ast.expr) -> bool:
    """True for ``Set[...]``/``set[...]``/``FrozenSet[...]`` annotations."""
    if isinstance(node, ast.Subscript):
        return _annotation_is_set(node.value)
    if isinstance(node, ast.Name):
        return node.id in ("Set", "set", "FrozenSet", "frozenset",
                           "MutableSet", "AbstractSet")
    if isinstance(node, ast.Attribute):
        return node.attr in ("Set", "FrozenSet", "MutableSet", "AbstractSet")
    return False


class _ModuleLinter(ast.NodeVisitor):

    def __init__(self, path: str):
        self.path = path
        self.findings: List[Finding] = []
        self._scope: List[str] = []
        #: Names imported from `random` / `time` / `datetime` directly.
        self._from_random: set = set()
        self._from_time: set = set()
        self._from_datetime: set = set()
        #: Attribute / variable names annotated as sets anywhere in the
        #: module (best-effort: one namespace per file is plenty here).
        self._set_names: set = set()

    # -- bookkeeping ------------------------------------------------------
    @property
    def qualname(self) -> str:
        return ".".join(self._scope) if self._scope else "<module>"

    def _in_decision_context(self) -> bool:
        return any(_DECISION_RE.search(name) for name in self._scope)

    def _flag(self, node: ast.AST, rule: str, message: str) -> None:
        self.findings.append(Finding(
            self.path, getattr(node, "lineno", 0), rule, self.qualname,
            message))

    def _push(self, node) -> None:
        self._scope.append(node.name)
        self.generic_visit(node)
        self._scope.pop()

    visit_FunctionDef = _push
    visit_AsyncFunctionDef = _push
    visit_ClassDef = _push

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        targets = {"random": self._from_random, "time": self._from_time,
                   "datetime": self._from_datetime}
        bucket = targets.get(node.module or "")
        if bucket is not None:
            for alias in node.names:
                bucket.add(alias.asname or alias.name)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if _annotation_is_set(node.annotation):
            target = node.target
            if isinstance(target, ast.Name):
                self._set_names.add(target.id)
            elif isinstance(target, ast.Attribute):
                self._set_names.add(target.attr)
        self.generic_visit(node)

    # -- rule: unseeded-random / wall-clock -------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and isinstance(func.value,
                                                          ast.Name):
            module, attr = func.value.id, func.attr
            if module == "random":
                if attr == "Random" and not node.args and not node.keywords:
                    self._flag(node, "unseeded-random",
                               "random.Random() constructed without a seed")
                elif attr in _GLOBAL_RNG_FNS:
                    self._flag(node, "unseeded-random",
                               f"random.{attr}() uses the process-global RNG")
            elif module == "time" and attr in _WALL_CLOCK_TIME_FNS:
                self._flag(node, "wall-clock", f"time.{attr}() call")
            elif (module == "datetime"
                  and attr in _WALL_CLOCK_DATETIME_FNS):
                self._flag(node, "wall-clock", f"datetime.{attr}() call")
        elif isinstance(func, ast.Attribute) and attr_chain(func) in (
                "datetime.datetime.now", "datetime.datetime.utcnow",
                "datetime.datetime.today"):
            self._flag(node, "wall-clock", f"{attr_chain(func)}() call")
        elif isinstance(func, ast.Name):
            name = func.id
            if (name in self._from_random and name == "Random"
                    and not node.args and not node.keywords):
                self._flag(node, "unseeded-random",
                           "Random() constructed without a seed")
            elif name in self._from_time and name in _WALL_CLOCK_TIME_FNS:
                self._flag(node, "wall-clock", f"{name}() call")
            elif (name in self._from_datetime
                  and name in _WALL_CLOCK_DATETIME_FNS):
                self._flag(node, "wall-clock", f"{name}() call")
        self.generic_visit(node)

    # -- rule: unordered-iteration ----------------------------------------
    def _check_iter(self, iter_node: ast.expr, where: ast.AST) -> None:
        if isinstance(iter_node, ast.Set):
            self._flag(where, "unordered-iteration",
                       "iteration over a set literal")
            return
        if isinstance(iter_node, ast.Call):
            func = iter_node.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                self._flag(where, "unordered-iteration",
                           f"iteration over {func.id}(...)")
                return
            if (isinstance(func, ast.Attribute)
                    and func.attr in ("keys", "values", "items")
                    and self._in_decision_context()):
                self._flag(
                    where, "unordered-iteration",
                    f".{func.attr}() iteration inside a decision function")
                return
        name = None
        if isinstance(iter_node, ast.Name):
            name = iter_node.id
        elif isinstance(iter_node, ast.Attribute):
            name = iter_node.attr
        if name is not None and name in self._set_names:
            self._flag(where, "unordered-iteration",
                       f"iteration over set-annotated {name!r}")

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter, node)
        self.generic_visit(node)

    def _visit_comp(self, node) -> None:
        for gen in node.generators:
            self._check_iter(gen.iter, node)
        self.generic_visit(node)

    visit_ListComp = _visit_comp
    visit_SetComp = _visit_comp
    visit_DictComp = _visit_comp
    visit_GeneratorExp = _visit_comp


def attr_chain(node: ast.expr) -> str:
    """Dotted source of a Name/Attribute chain ('' when not a chain)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return ""
    parts.append(node.id)
    return ".".join(reversed(parts))


def lint_source(source: str, path: str) -> List[Finding]:
    """Lint one module's source; ``path`` labels the findings."""
    tree = ast.parse(source, filename=path)
    linter = _ModuleLinter(path)
    # Two passes so Set annotations anywhere in the file (e.g. in
    # ``__init__``) cover loops that appear earlier.
    collector = _ModuleLinter(path)
    for node in ast.walk(tree):
        if isinstance(node, ast.AnnAssign):
            collector.visit_AnnAssign(node)
    linter._set_names = collector._set_names
    linter.visit(tree)
    return linter.findings


def default_allowlist_path() -> Path:
    return Path(__file__).with_name("allowlist.txt")


def load_allowlist(path: Optional[Path] = None) -> List[str]:
    """Read allowlist patterns; missing file means an empty allowlist."""
    path = path or default_allowlist_path()
    if not Path(path).exists():
        return []
    patterns = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if line and not line.startswith("#"):
            patterns.append(line)
    return patterns


def _allowed(finding: Finding, patterns: Sequence[str]) -> bool:
    return any(fnmatch.fnmatch(finding.key, pattern) for pattern in patterns)


def lint_paths(paths: Sequence[str],
               allowlist: Optional[Path] = None,
               ) -> Tuple[List[Finding], int]:
    """Lint every ``.py`` file under ``paths``.

    Returns ``(findings, suppressed)`` — findings surviving the allowlist,
    and the count the allowlist suppressed.  Paths in findings are
    relative to the common walk root when possible.
    """
    patterns = load_allowlist(allowlist)
    findings: List[Finding] = []
    suppressed = 0
    for root in paths:
        root_path = Path(root)
        files = ([root_path] if root_path.is_file()
                 else sorted(root_path.rglob("*.py")))
        for file in files:
            rel = file.as_posix()
            for finding in lint_source(file.read_text(), rel):
                if _allowed(finding, patterns):
                    suppressed += 1
                else:
                    findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line))
    return findings, suppressed
