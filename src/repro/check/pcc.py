"""Per-connection-consistency (PCC) monitor for a live fleet.

The fleet's correctness bar under churn (ISSUE 7 / Concury, Technion
LB-scalability): **no connection changes backend mid-life** unless its
instance or its backend died.  The fleet keeps a
:class:`~repro.fleet.FlowRecord` per client connection — the backend and
mapping version it was pinned to at birth; the monitor periodically
re-resolves every *live* record through the fleet's lookup policy and
demands the answer still equals the recorded pin.

Legal exceptions are encoded in the ledger itself, not in the check: a
record whose backend or instance died carries ``broken_reason`` (its
connection was reset), so it leaves the live set.  A *migrated* record
(stateless failover) stays in the live set on purpose — surviving an
instance crash must NOT change the backend, and the recomputation proves
it.

A second check audits routing agreement: the cluster's per-connection
device map must name the same instance the flow record does (the ingress
tier and the PCC ledger can't disagree about ownership).

Like :class:`~repro.check.InvariantMonitor`, the monitor only reads: an
unmonitored run is bit-identical, and a violation raises
:class:`~repro.check.InvariantViolation` with a flight-recorder dump
attached when a recorder is wired.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .invariants import InvariantViolation

__all__ = ["PccMonitor", "watch_fleet"]


class PccMonitor:
    """Re-derives the fleet's PCC contract from live state, per tick."""

    def __init__(self, fleet, interval: Optional[float] = None,
                 recorder=None, raise_on_violation: bool = True):
        self.fleet = fleet
        self.env = fleet.env
        self.interval = (interval if interval is not None
                         else fleet.instances[0].config.epoll_timeout)
        self.recorder = recorder if recorder is not None else (
            fleet.tracer.recorder if fleet.tracer is not None else None)
        self.raise_on_violation = raise_on_violation
        self.violations: List[InvariantViolation] = []
        self.checks_passed: Dict[str, int] = {}
        self.ticks = 0
        self._armed = False

    # -- lifecycle -------------------------------------------------------
    def attach(self) -> "PccMonitor":
        if self._armed:
            raise RuntimeError("monitor already attached")
        self._armed = True
        self.env.schedule_callback(self.interval, self._tick)
        if self.fleet.tracer is not None:
            self.fleet.tracer.instant("check.arm", "check",
                                      monitor="pcc", interval=self.interval)
        return self

    def detach(self) -> None:
        self._armed = False

    def _tick(self) -> None:
        if not self._armed:
            return
        self.check_now()
        self.env.schedule_callback(self.interval, self._tick)

    # -- violation plumbing ----------------------------------------------
    def _violate(self, name: str, message: str) -> None:
        dump = self.recorder.dump() if self.recorder is not None else None
        violation = InvariantViolation(name, message, flight_events=dump)
        self.violations.append(violation)
        if self.fleet.tracer is not None:
            self.fleet.tracer.instant("check.violation", "check",
                                      invariant=name, message=message)
        if self.raise_on_violation:
            raise violation

    def _passed(self, name: str) -> None:
        self.checks_passed[name] = self.checks_passed.get(name, 0) + 1

    # -- the invariants ---------------------------------------------------
    def check_now(self) -> None:
        self.ticks += 1
        self._check_pcc()
        self._check_routing()

    def _check_pcc(self) -> None:
        fleet = self.fleet
        for record in fleet.live_records():
            expected = fleet.expected_backend(record)
            if expected is None:
                self._violate(
                    "pcc",
                    f"conn {record.conn.id} on {record.instance_name}: "
                    f"lookup lost the mapping of a live connection "
                    f"(policy {fleet.policy.value})")
                return
            if expected != record.backend:
                self._violate(
                    "pcc",
                    f"conn {record.conn.id} on {record.instance_name}: "
                    f"backend changed mid-life {record.backend} -> "
                    f"{expected} (version {record.version}, no instance "
                    f"or backend death recorded)")
                return
        self._passed("pcc")

    def _check_routing(self) -> None:
        fleet = self.fleet
        for record in fleet.live_records():
            device = fleet.cluster.device_for(record.conn)
            if device is None:
                continue  # connection refused before the cluster pinned it
            if device.name != record.instance_name:
                self._violate(
                    "pcc_routing",
                    f"conn {record.conn.id}: cluster routes to "
                    f"{device.name} but the flow record says "
                    f"{record.instance_name}")
                return
        self._passed("pcc_routing")

    # -- end-of-run -------------------------------------------------------
    def finalize(self) -> Dict[str, int]:
        """One last evaluation, then detach.  Returns pass counters."""
        self.check_now()
        self.detach()
        return dict(self.checks_passed)


def watch_fleet(fleet, interval: Optional[float] = None, recorder=None,
                raise_on_violation: bool = True) -> PccMonitor:
    """Attach a :class:`PccMonitor` to ``fleet`` and return it."""
    return PccMonitor(fleet, interval=interval, recorder=recorder,
                      raise_on_violation=raise_on_violation).attach()
