"""``repro check`` — the one-command correctness gate.

Three phases, all opt-in subsets via flags:

- **lint** — the nondeterminism AST pass over the sources.
- **oracles** — a deterministic offline sweep of every reference oracle
  against its fast path (the deep version lives in the hypothesis suites;
  this is the seconds-fast smoke that CI and the CLI run).
- **scenarios** — real end-to-end runs with invariant monitors armed and
  live differential oracles patched in: one Table 3 cell and the §7
  crash-blast scenario in both exclusive and Hermes modes.

:func:`run_monitored_crash` is also the harness for the deliberate-
corruption drill: with ``corrupt_bitmap=True`` every scheduler sync is
wrapped to OR a bit beyond the group width into the kernel's selection
word.  The simulated kernel itself degrades gracefully (dispatch falls
back to hashing, as ``bpf_sk_select_reuseport`` would) — it is the
bitmap↔WST monitor that must catch the corruption.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .invariants import InvariantMonitor, watch
from .lint import Finding, lint_paths
from .oracles import (
    live_oracles,
    ref_find_nth_set_bit,
    ref_jhash_words,
    ref_popcount64,
    ref_reciprocal_scale,
)

__all__ = ["CheckReport", "run_check", "run_monitored_crash",
           "run_monitored_fleet", "oracle_sweep"]


@dataclass
class CheckReport:
    """Everything one ``repro check`` invocation established."""

    lint_findings: List[Finding] = field(default_factory=list)
    lint_suppressed: int = 0
    #: oracle name -> agreeing comparisons (offline sweep + live runs).
    oracle_comparisons: Dict[str, int] = field(default_factory=dict)
    #: invariant name -> passing evaluations across all scenarios.
    monitor_passes: Dict[str, int] = field(default_factory=dict)
    #: scenario label -> summary numbers.
    scenarios: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: Human-readable violations/mismatches (empty on a clean run).
    problems: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.lint_findings and not self.problems

    def merge_comparisons(self, comparisons: Dict[str, int]) -> None:
        for name, count in comparisons.items():
            self.oracle_comparisons[name] = (
                self.oracle_comparisons.get(name, 0) + count)

    def merge_passes(self, passes: Dict[str, int]) -> None:
        for name, count in passes.items():
            self.monitor_passes[name] = (
                self.monitor_passes.get(name, 0) + count)


# ---------------------------------------------------------------------------
# Offline oracle sweep.
# ---------------------------------------------------------------------------

def oracle_sweep(seed: int = 0xC0FFEE, vectors: int = 2000) -> Dict[str, int]:
    """Cross-check every fast path on ``vectors`` seeded random inputs.

    Raises :class:`~repro.check.oracles.OracleMismatch` on the first
    divergence; returns comparison counts when everything agrees.
    """
    from ..core.bitmap import find_nth_set_bit, popcount64
    from ..kernel.hash import jhash_words, reciprocal_scale

    rng = random.Random(seed)
    counts: Dict[str, int] = {}

    def bump(name: str) -> None:
        counts[name] = counts.get(name, 0) + 1

    from .oracles import checked
    c_pop = checked(popcount64, ref_popcount64, "popcount64")
    c_nth = checked(find_nth_set_bit, ref_find_nth_set_bit,
                    "find_nth_set_bit")
    c_scale = checked(reciprocal_scale, ref_reciprocal_scale,
                      "reciprocal_scale")
    c_jhash = checked(jhash_words, ref_jhash_words, "jhash_words")

    for _ in range(vectors):
        word = rng.getrandbits(64)
        n = c_pop(word)
        bump("popcount64")
        if n:
            c_nth(word, rng.randrange(n))
            bump("find_nth_set_bit")
        c_scale(rng.getrandbits(32), rng.randrange(1, 256))
        bump("reciprocal_scale")
        c_jhash([rng.getrandbits(32)
                 for _ in range(rng.randrange(1, 8))],
                rng.getrandbits(32))
        bump("jhash_words")
    return counts


# ---------------------------------------------------------------------------
# Monitored end-to-end scenarios.
# ---------------------------------------------------------------------------

def run_monitored_cell(mode: str = "hermes", case: str = "case2",
                       load: str = "light", n_workers: int = 8,
                       duration: float = 2.0, seed: int = 7):
    """One Table 3 cell with an invariant monitor riding along.

    Returns ``(cell_result, monitor_passes)``; raises on any violation.
    """
    from ..experiments.common import run_case_cell
    from ..lb.server import NotificationMode

    monitors: List[InvariantMonitor] = []

    def arm(env, server, gen):
        monitors.append(watch(server))

    result = run_case_cell(NotificationMode(mode), case, load,
                           n_workers=n_workers, duration=duration,
                           seed=seed, env_hook=arm)
    return result, monitors[0].finalize()


def run_monitored_crash(mode: str = "hermes", n_workers: int = 8,
                        n_connections: int = 400, seed: int = 79,
                        corrupt_bitmap: bool = False,
                        interval: Optional[float] = None,
                        raise_on_violation: bool = True):
    """The §7 crash-blast scenario with monitors armed.

    Mirrors the sec7 experiment's construction (same seeds, same fault
    plan: crash the busiest worker at t=2.5, detect 5 ms later) and runs
    it under a flight recorder so a violation carries a post-mortem dump.

    ``corrupt_bitmap=True`` arms the corruption drill described in the
    module docstring.  Returns ``(monitor, passes, summary)``.
    """
    from ..faults import FaultInjector, FaultKind, FaultPlan, FaultSpec
    from ..lb.server import LBServer, NotificationMode
    from ..obs import FlightRecorder, Tracer
    from ..sim.engine import Environment
    from ..sim.rng import RngRegistry
    from ..workloads.distributions import FixedFactory
    from ..workloads.generator import TrafficGenerator, WorkloadSpec

    env = Environment()
    registry = RngRegistry(seed)
    recorder = FlightRecorder(capacity=256)
    tracer = Tracer(env, recorder=recorder, keep_events=False)
    server = LBServer(env, n_workers=n_workers, ports=[443],
                      mode=NotificationMode(mode),
                      hash_seed=registry.stream("hash").randrange(2 ** 32),
                      tracer=tracer)
    server.start()
    monitor = watch(server, interval=interval,
                    raise_on_violation=raise_on_violation)
    if corrupt_bitmap:
        if not server.groups:
            raise ValueError(
                f"mode {mode!r} has no selection bitmap to corrupt")
        group = server.groups[0]
        bad_bit = 1 << len(group.worker_ids)
        real_update = group.sel_map.update_from_user

        def corrupted_update(key: int, value: int) -> None:
            real_update(key, value | bad_bit)

        group.sel_map.update_from_user = corrupted_update

    spec = WorkloadSpec(name="blast", conn_rate=n_connections / 2.0,
                        duration=2.0, factory=FixedFactory((200e-6,)),
                        ports=(443,), requests_per_conn=50,
                        request_gap_mean=0.5)
    gen = TrafficGenerator(env, server, registry.stream("traffic"), spec)
    plan = FaultPlan(faults=(
        FaultSpec(kind=FaultKind.WORKER_CRASH, at=2.5, target="busiest",
                  detect_delay=0.005),
    ), seed=seed)
    injector = FaultInjector(env, server, plan, tracer=tracer).arm()
    gen.start()
    env.run(until=3.0)
    passes = monitor.finalize()

    fire = injector.fired(FaultKind.WORKER_CRASH)[0]
    cleanup = [r for r in injector.log if r["event"] == "clear"][0]
    total = fire["total_conns"]
    killed = cleanup["blast"]
    summary = {
        "mode": mode,
        "total_connections": total,
        "connections_killed": killed,
        "blast_fraction": killed / total if total else 0.0,
    }
    return monitor, passes, summary


def run_monitored_fleet(policy: str = "stateless", n_instances: int = 4,
                        n_workers: int = 2, seed: int = 31,
                        duration: float = 1.5, conn_rate: float = 150.0,
                        churn_at: float = 0.6, churn_k: int = 2,
                        crash_at: Optional[float] = None,
                        detect_delay: float = 0.005,
                        corrupt_lookup: bool = False,
                        interval: Optional[float] = None,
                        raise_on_violation: bool = True):
    """A fleet churn (+ optional instance crash) scenario under the PCC
    monitor and per-instance invariant monitors.

    ``corrupt_lookup=True`` arms the PCC corruption drill: every backend-
    map update additionally tampers with the *version-0* table, so live
    connections stamped under it re-resolve to a different backend — the
    exact silent-state-corruption failure Concury's versioning guards
    against, and the :class:`~repro.check.PccMonitor` must catch it.

    Returns ``(pcc_monitor, passes, summary)`` where ``passes`` merges
    the PCC counters with every instance monitor's.
    """
    from ..faults import FaultInjector, FaultKind, FaultPlan, FaultSpec
    from ..fleet import build_fleet
    from ..obs import FlightRecorder, Tracer
    from ..sim.engine import Environment
    from ..sim.rng import RngRegistry
    from ..workloads.distributions import FixedFactory
    from ..workloads.generator import TrafficGenerator, WorkloadSpec
    from .pcc import watch_fleet

    env = Environment()
    registry = RngRegistry(seed)
    recorder = FlightRecorder(capacity=256)
    tracer = Tracer(env, recorder=recorder, keep_events=False)
    fleet = build_fleet(env, n_instances, n_workers, ports=[443],
                        mode="hermes", policy=policy,
                        hash_seed=registry.stream("hash").randrange(2 ** 32),
                        tracer=tracer)
    fleet.start()
    pcc = watch_fleet(fleet, interval=interval,
                      raise_on_violation=raise_on_violation)
    monitors = [watch(instance) for instance in fleet.instances]
    if corrupt_lookup:
        backend_map = fleet.backend_map
        real_update = backend_map.update

        def corrupted_update(backends):
            version = real_update(backends)
            backend_map._tables[0] = [b + 1000
                                      for b in backend_map._tables[0]]
            return version

        backend_map.update = corrupted_update

    spec = WorkloadSpec(name="fleet", conn_rate=conn_rate,
                        duration=max(0.1, duration - 0.3),
                        factory=FixedFactory((200e-6,)), ports=(443,),
                        requests_per_conn=20, request_gap_mean=0.05)
    gen = TrafficGenerator(env, fleet, registry.stream("traffic"), spec)
    faults = [FaultSpec(kind=FaultKind.BACKEND_CHURN, at=churn_at,
                        magnitude=churn_k)]
    if crash_at is not None:
        faults.append(FaultSpec(kind=FaultKind.INSTANCE_CRASH, at=crash_at,
                                target="busiest",
                                detect_delay=detect_delay))
    plan = FaultPlan(faults=tuple(faults), seed=seed)
    injector = FaultInjector(env, None, plan, tracer=tracer,
                             fleet=fleet).arm()
    gen.start()
    env.run(until=duration)
    passes = pcc.finalize()
    for monitor in monitors:
        for name, count in monitor.finalize().items():
            passes[name] = passes.get(name, 0) + count
    summary = fleet.summary()
    summary["seed"] = seed
    summary["faults_fired"] = injector.faults_fired
    summary["pcc_violations"] = len(pcc.violations)
    return pcc, passes, summary


# ---------------------------------------------------------------------------
# The full gate.
# ---------------------------------------------------------------------------

def run_check(lint: bool = True, oracles: bool = True,
              scenarios: bool = True, paths=("src",),
              allowlist=None, seed: int = 7,
              out=None) -> CheckReport:
    """Run the selected phases; never raises on findings — read the report.

    ``out`` is an optional ``print``-like callable for progress lines.
    """
    from .invariants import InvariantViolation
    from .oracles import OracleMismatch

    say = out if out is not None else (lambda *_: None)
    report = CheckReport()

    if lint:
        findings, suppressed = lint_paths(paths, allowlist=allowlist)
        report.lint_findings = findings
        report.lint_suppressed = suppressed
        say(f"lint: {len(findings)} finding(s), {suppressed} allowlisted")

    if oracles:
        try:
            report.merge_comparisons(oracle_sweep())
        except OracleMismatch as exc:
            report.problems.append(f"oracle sweep: {exc}")
        say(f"oracles: {sum(report.oracle_comparisons.values())} "
            f"comparison(s) agreed")

    if scenarios:
        for label, runner in (
            ("table3/hermes", lambda: _scenario_cell(report, seed)),
            ("sec7/exclusive",
             lambda: _scenario_crash(report, "exclusive")),
            ("sec7/hermes", lambda: _scenario_crash(report, "hermes")),
            ("fleet/stateless", lambda: _scenario_fleet(report)),
        ):
            try:
                with live_oracles() as stats:
                    runner()
                report.merge_comparisons(stats.comparisons)
                say(f"scenario {label}: ok "
                    f"({stats.total} live comparison(s))")
            except (InvariantViolation, OracleMismatch) as exc:
                report.problems.append(f"scenario {label}: {exc}")
                say(f"scenario {label}: FAILED: {exc}")
    return report


def _scenario_cell(report: CheckReport, seed: int) -> None:
    result, passes = run_monitored_cell(seed=seed)
    report.merge_passes(passes)
    report.scenarios["table3/hermes"] = {
        "completed": result.completed,
        "failed": result.failed,
        "p99_ms": result.p99_ms,
    }


def _scenario_crash(report: CheckReport, mode: str) -> None:
    _monitor, passes, summary = run_monitored_crash(mode=mode)
    report.merge_passes(passes)
    report.scenarios[f"sec7/{mode}"] = summary


def _scenario_fleet(report: CheckReport) -> None:
    _monitor, passes, summary = run_monitored_fleet()
    report.merge_passes(passes)
    report.scenarios["fleet/stateless"] = {
        "completed": summary["completed"],
        "broken": summary["broken"],
        "migrated": summary["migrated"],
        "p99_ms": summary["p99_ms"],
    }
