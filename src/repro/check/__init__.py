"""repro.check — runtime invariant monitors, differential oracles, and a
nondeterminism linter for the simulated LB stack.

Three layers of defence for the repo's bit-identical-reproduction claim:

- :mod:`.invariants` — monitors attachable to a live server; violations
  raise with a flight-recorder dump.
- :mod:`.oracles` — obviously-correct references cross-checked against
  every fast path, offline (property tests) and live (``--check``).
- :mod:`.lint` — an AST pass that flags unseeded RNGs, wall-clock reads,
  and unordered iteration at decision points before they ever run.

All of it is opt-in: an unchecked run executes zero instructions from
this package.
"""

from .invariants import InvariantMonitor, InvariantViolation, watch
from .lint import Finding, lint_paths, lint_source
from .pcc import PccMonitor, watch_fleet
from .oracles import (
    OracleMismatch,
    OracleStats,
    checked,
    live_oracles,
    ref_cascade,
    ref_find_nth_set_bit,
    ref_jhash_4tuple,
    ref_jhash_words,
    ref_popcount64,
    ref_reciprocal_scale,
)
from .runner import CheckReport, run_check

__all__ = [
    "InvariantMonitor",
    "InvariantViolation",
    "watch",
    "PccMonitor",
    "watch_fleet",
    "Finding",
    "lint_paths",
    "lint_source",
    "OracleMismatch",
    "OracleStats",
    "checked",
    "live_oracles",
    "ref_cascade",
    "ref_find_nth_set_bit",
    "ref_jhash_4tuple",
    "ref_jhash_words",
    "ref_popcount64",
    "ref_reciprocal_scale",
    "CheckReport",
    "run_check",
]
