"""Differential oracles: obviously-correct references for every fast path.

Hermes's correctness hinges on exact kernel semantics — Algorithm 2 must
agree with ``reciprocal_scale``/``popcount64`` bit for bit, and the
userspace cascade must select exactly the set the paper's Algorithm 1
describes.  The production implementations are deliberately *clever*
(SWAR reductions, branchless selects, identity-preserving filter fast
paths); each one gets a reference here that is deliberately *dumb*:

- :func:`ref_popcount64` — ``bin(v).count("1")``;
- :func:`ref_find_nth_set_bit` — a brute-force bit walk;
- :func:`ref_reciprocal_scale` — plain modulo/floor-division arithmetic;
- :func:`ref_jhash_words` / :func:`ref_jhash_4tuple` — an independent
  transcription of the kernel's ``jhash2`` using ``% 2**32`` arithmetic;
- :func:`ref_cascade` — the cascade re-derived from the paper's prose,
  one filter at a time, with none of the scheduler's hoisted state;
- :func:`ref_prequal_select` — the Prequal hot/cold-lane pick re-derived
  by naive full re-scan of a pool snapshot.

:func:`checked` fuses a fast path with its reference (raising
:class:`OracleMismatch` on any divergence), and :func:`live_oracles` is
the ``--check`` switch: a context manager that patches the checked
versions into the kernel dispatch program and the cascading scheduler of
a *live* run.  The fast value is always the one returned, so a run under
live oracles is byte-identical to an unchecked run — or it raises.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, List, Optional, Sequence

__all__ = [
    "OracleMismatch",
    "OracleStats",
    "ref_popcount64",
    "ref_find_nth_set_bit",
    "ref_reciprocal_scale",
    "ref_jhash_words",
    "ref_jhash_4tuple",
    "ref_cascade",
    "ref_prequal_select",
    "checked",
    "live_oracles",
]

_M64 = (1 << 64) - 1
_M32 = (1 << 32) - 1


class OracleMismatch(AssertionError):
    """A fast path disagreed with its reference implementation."""


# ---------------------------------------------------------------------------
# Reference implementations.
# ---------------------------------------------------------------------------

def ref_popcount64(value: int) -> int:
    """Hamming weight the obvious way."""
    return bin(value & _M64).count("1")


def ref_find_nth_set_bit(value: int, rank: int) -> int:
    """Walk the bits LSB-first, counting set ones, until rank runs out."""
    v = value & _M64
    if rank < 0:
        raise ValueError(f"rank must be >= 0, got {rank}")
    seen = 0
    for position in range(64):
        if v & (1 << position):
            if seen == rank:
                return position
            seen += 1
    raise ValueError(
        f"bitmap {value:#x} has {seen} set bits; no bit of rank {rank}")


def ref_reciprocal_scale(value: int, ep_ro: int) -> int:
    """``(value * range) >> 32`` restated as modulo + floor division."""
    if ep_ro <= 0:
        raise ValueError(
            f"reciprocal_scale range must be positive, got {ep_ro}")
    return ((value % (1 << 32)) * ep_ro) // (1 << 32)


def _rol32(value: int, bits: int) -> int:
    value %= 1 << 32
    return ((value * (1 << bits)) % (1 << 32)) + (value // (1 << (32 - bits)))


def ref_jhash_words(words: Sequence[int], initval: int = 0) -> int:
    """Jenkins lookup3 over 32-bit words, transcribed independently.

    Same algorithm as :func:`repro.kernel.hash.jhash_words` (it must be —
    that is the point), but written from the lookup3 paper's description
    with ``%``-based arithmetic and a table-driven mix so a transcription
    slip in either copy makes the two disagree.
    """
    length = len(words)
    a = b = c = (0xDEADBEEF + 4 * length + initval) % (1 << 32)

    def mix(a: int, b: int, c: int):
        for shift in (4, 6, 8, 16, 19, 4):
            a = (a - c) % (1 << 32)
            a = a ^ _rol32(c, shift)
            c = (c + b) % (1 << 32)
            a, b, c = b, c, a
        return a, b, c

    def final(a: int, b: int, c: int) -> int:
        for x, y, shift in ((2, 1, 14), (0, 2, 11), (1, 0, 25), (2, 1, 16),
                            (0, 2, 4), (1, 0, 14), (2, 1, 24)):
            regs = [a, b, c]
            regs[x] = (regs[x] ^ regs[y]) % (1 << 32)
            regs[x] = (regs[x] - _rol32(regs[y], shift)) % (1 << 32)
            a, b, c = regs
        return c

    index = 0
    while length > 3:
        a = (a + words[index]) % (1 << 32)
        b = (b + words[index + 1]) % (1 << 32)
        c = (c + words[index + 2]) % (1 << 32)
        a, b, c = mix(a, b, c)
        index += 3
        length -= 3
    if length == 3:
        c = (c + words[index + 2]) % (1 << 32)
    if length >= 2:
        b = (b + words[index + 1]) % (1 << 32)
    if length >= 1:
        a = (a + words[index]) % (1 << 32)
        c = final(a, b, c)
    return c % (1 << 32)


def ref_jhash_4tuple(four_tuple, initval: int = 0) -> int:
    """Flow hash of a 4-tuple via :func:`ref_jhash_words`."""
    ports = ((four_tuple.src_port % (1 << 16)) * (1 << 16)
             + four_tuple.dst_port % (1 << 16))
    return ref_jhash_words(
        [four_tuple.src_ip % (1 << 32), four_tuple.dst_ip % (1 << 32),
         ports], initval)


def ref_cascade(times: Sequence[float], events: Sequence[float],
                conns: Sequence[float], now: float,
                worker_ids: Sequence[int],
                hang_threshold: float, theta_ratio: float,
                filter_order: Sequence[str],
                capacity_limits: Optional[Sequence[Optional[int]]] = None,
                ) -> List[int]:
    """Algorithm 1 from the paper's prose, one naive filter at a time.

    ``times``/``events``/``conns`` are indexed by worker id (the WST
    columns); returns the surviving worker ids in candidate order.  No
    identity fast path, no hoisted averages — just the definition.
    """
    candidates = list(worker_ids)
    for stage in filter_order:
        if not candidates:
            break
        if stage == "time":
            candidates = [w for w in candidates
                          if now - times[w] < hang_threshold]
        elif stage in ("conn", "event"):
            values = conns if stage == "conn" else events
            avg = sum(values[w] for w in candidates) / len(candidates)
            candidates = [w for w in candidates
                          if values[w] <= avg + theta_ratio * avg]
        elif stage == "capacity":
            if capacity_limits is not None:
                candidates = [w for w in candidates
                              if capacity_limits[w] is None
                              or conns[w] < capacity_limits[w]]
        else:
            raise ValueError(f"unknown filter stage {stage!r}")
    return candidates


def ref_prequal_select(entries: Sequence[tuple], now: float, max_age: float,
                       q_hot: float, policy: str) -> Optional[tuple]:
    """The Prequal selection contract by naive full re-scan.

    ``entries`` is a pool snapshot *before* the fast path ran:
    ``(worker_id, rif, latency, t)`` tuples in arrival order.  Returns the
    winning ``(worker_id, rif, latency)`` or ``None`` for an empty (or
    fully stale) pool.  No lanes are precomputed, no sort keys — every
    candidate is walked and compared field by field.
    """
    live = [e for e in entries if e[3] >= now - max_age]
    if not live:
        return None

    def scan(candidates, first, second):
        # first/second: tuple indices of the primary/secondary sort field
        # (worker id is always the final tie-break).
        best = candidates[0]
        for entry in candidates[1:]:
            key_entry = (entry[first], entry[second], entry[0])
            key_best = (best[first], best[second], best[0])
            if key_entry < key_best:
                best = entry
        return best

    if policy == "latency":
        winner = scan(live, 2, 1)
    elif policy == "rif":
        winner = scan(live, 1, 2)
    elif policy == "hcl":
        rifs = sorted(entry[1] for entry in live)
        threshold = rifs[min(len(rifs) - 1, int(q_hot * len(rifs)))]
        cold = [entry for entry in live if entry[1] <= threshold]
        if cold:
            winner = scan(cold, 2, 1)
        else:
            winner = scan(live, 1, 2)
    else:
        raise ValueError(f"unknown prequal policy {policy!r}")
    return (winner[0], winner[1], winner[2])


# ---------------------------------------------------------------------------
# Fusing fast paths with their references.
# ---------------------------------------------------------------------------

class OracleStats:
    """Comparison counters for one :func:`live_oracles` window."""

    def __init__(self):
        #: oracle name -> number of agreeing comparisons.
        self.comparisons = {}
        #: Mismatches caught (the window raises before this exceeds 1).
        self.mismatches = 0

    @property
    def total(self) -> int:
        return sum(self.comparisons.values())

    def count(self, name: str) -> None:
        self.comparisons[name] = self.comparisons.get(name, 0) + 1


def checked(fast: Callable, ref: Callable, name: str,
            stats: Optional[OracleStats] = None) -> Callable:
    """Wrap ``fast`` so every call is cross-checked against ``ref``.

    Returns the fast path's value (so checked code behaves identically)
    after asserting the reference agrees — on the value, or on the
    exception type when both refuse the input.  Any divergence raises
    :class:`OracleMismatch` naming the inputs.
    """
    def wrapper(*args, **kwargs):
        try:
            got = fast(*args, **kwargs)
        except Exception as fast_exc:
            try:
                ref(*args, **kwargs)
            except type(fast_exc):
                raise  # both refuse alike: propagate the fast path's error
            if stats is not None:
                stats.mismatches += 1
            raise OracleMismatch(
                f"{name}{args!r}: fast path raised "
                f"{type(fast_exc).__name__} but the reference did not"
            ) from fast_exc
        want = ref(*args, **kwargs)
        if got != want:
            if stats is not None:
                stats.mismatches += 1
            raise OracleMismatch(
                f"{name}{args!r}: fast path returned {got!r}, "
                f"reference says {want!r}")
        if stats is not None:
            stats.count(name)
        return got

    wrapper.__name__ = f"checked_{name}"
    return wrapper


@contextmanager
def live_oracles():
    """Arm differential checking on a live run (the ``--check`` switch).

    Patches the kernel dispatch program's module-level ``popcount64`` /
    ``find_nth_set_bit`` / ``reciprocal_scale`` bindings with checked
    versions and wraps ``CascadingScheduler.select_workers`` to re-derive
    every cascade decision with :func:`ref_cascade`.  Yields an
    :class:`OracleStats`; restores everything on exit.  The checked
    wrappers always return the fast value, so a surviving run is
    byte-identical to an unchecked one.
    """
    from ..core import dispatch as _dispatch
    from ..core import groups as _groups
    from ..core.scheduler import CascadingScheduler
    from ..prequal.selector import PrequalSelector

    stats = OracleStats()
    saved = (_dispatch.popcount64, _dispatch.find_nth_set_bit,
             _dispatch.reciprocal_scale, CascadingScheduler.select_workers,
             _groups.reciprocal_scale, _groups.jhash_words,
             PrequalSelector.select)
    fast_select = saved[3]
    fast_prequal = saved[6]

    def checked_select(self, snapshot, now):
        # Copy the columns first: ``snapshot`` may be the scheduler's
        # zero-copy WstView over live lists.
        times = tuple(snapshot.times)
        events = tuple(snapshot.events)
        conns = tuple(snapshot.conns)
        selected = fast_select(self, snapshot, now)
        want = ref_cascade(
            times, events, conns, now, self.worker_ids,
            self.config.hang_threshold, self.config.theta_ratio,
            self.config.filter_order, self.capacity_limits)
        if list(selected) != want:
            stats.mismatches += 1
            raise OracleMismatch(
                f"cascade selected {list(selected)!r}, reference says "
                f"{want!r} (now={now}, times={times}, events={events}, "
                f"conns={conns})")
        stats.count("cascade")
        return selected

    def checked_prequal(self, now):
        # Snapshot first: the fast path evicts stale samples and charges
        # the winner's reuse budget as it runs.
        entries = [(s.worker_id, s.rif, s.latency, s.t)
                   for s in self.pool.entries]
        decision = fast_prequal(self, now)
        want = ref_prequal_select(entries, now, self.pool.max_age,
                                  self.config.q_hot, self.config.policy)
        got = (None if decision is None
               else (decision.worker_id, decision.rif, decision.latency))
        if got != want:
            stats.mismatches += 1
            raise OracleMismatch(
                f"prequal selected {got!r}, reference says {want!r} "
                f"(now={now}, policy={self.config.policy}, "
                f"pool={entries!r})")
        stats.count("prequal_select")
        return decision

    _dispatch.popcount64 = checked(
        saved[0], ref_popcount64, "popcount64", stats)
    _dispatch.find_nth_set_bit = checked(
        saved[1], ref_find_nth_set_bit, "find_nth_set_bit", stats)
    _dispatch.reciprocal_scale = checked(
        saved[2], ref_reciprocal_scale, "reciprocal_scale", stats)
    CascadingScheduler.select_workers = checked_select
    # Grouped (>64-worker) dispatch binds its own copies for level-1
    # routing; check those too.
    _groups.reciprocal_scale = checked(
        saved[4], ref_reciprocal_scale, "reciprocal_scale", stats)
    _groups.jhash_words = checked(
        saved[5], ref_jhash_words, "jhash_words", stats)
    PrequalSelector.select = checked_prequal
    try:
        yield stats
    finally:
        (_dispatch.popcount64, _dispatch.find_nth_set_bit,
         _dispatch.reciprocal_scale) = saved[:3]
        CascadingScheduler.select_workers = saved[3]
        _groups.reciprocal_scale, _groups.jhash_words = saved[4:6]
        PrequalSelector.select = saved[6]
