"""Runtime invariant monitors for a live :class:`~repro.lb.server.LBServer`.

A monitor is attached *around* a server — the server code has no idea it
is being watched, so an unmonitored run executes zero check instructions
and stays byte-identical to the goldens.  An armed monitor is still
invisible to the results: it only reads (no RNG draws, no metric
counters, no map syscalls), and its periodic process adds heap entries
without disturbing the relative order of any existing events.

Checked invariants, per tick:

- **Connection conservation** — for every plain worker,
  ``accepted == closed + in_flight + crash_resets``, and globally the
  device's accepted total equals the per-worker sum.  Crash resets are
  accounted by wrapping ``LBServer.detect_and_clean_worker``.
- **bitmap ↔ WST ↔ sockarray consistency** (Hermes modes) — the kernel's
  selection word has no bits beyond the group width; every set bit whose
  worker is alive has an installed sockarray slot (a set bit for a
  *crashed* worker is legal inside the failure-detection window — the
  dispatch program falls back); and an alive, never-crashed worker's WST
  connection column equals its live connection count.
- **No lost wakeup** — a worker sleeping in ``epoll_wait`` with ready
  events pending must be woken; if the condition persists across two
  consecutive ticks with no intervening wait, the wakeup was lost.
- **Clock monotonicity** — the sim clock never runs backwards, and no
  WST timestamp comes from the future.
- **Probe-pool conservation** (PREQUAL mode) — every probe sample that
  ever entered the pool is consumed, evicted, or still pooled
  (``issued == consumed + evicted + in_pool``), and the pool never
  exceeds its configured capacity.
- **Splice-ledger conservation** (SPLICE mode) — every request handed to
  the kernel datapath is forwarded, dropped, or still in flight
  (``requests_in == forwarded + dropped + in_flight``, same for bytes),
  and the SOCKMAP never holds more entries than its capacity.

Connection conservation counts *client* connections only: probe
connections (negative tenant ids) are injected by a prober directly into
the worker — they never pass the accept path, so they appear in neither
``accepted`` nor the WST connection columns.

Violations emit a ``check.violation`` trace event, capture a flight-
recorder dump when a recorder is wired, and raise
:class:`InvariantViolation`.  :meth:`InvariantMonitor.finalize` adds a
trace-stream monotonicity sweep (event timestamps and sequence numbers
must be non-decreasing — the span-timeline contract).
"""

from __future__ import annotations

from typing import Dict, List, Optional

__all__ = ["InvariantViolation", "InvariantMonitor", "watch"]


class InvariantViolation(AssertionError):
    """A runtime invariant failed on a live server.

    ``name`` is the invariant's identifier (e.g. ``"bitmap_wst"``);
    ``flight_events`` carries the flight-recorder dump when the monitor
    had a recorder wired, else ``None``.
    """

    def __init__(self, name: str, message: str,
                 flight_events: Optional[List[dict]] = None):
        super().__init__(f"[{name}] {message}")
        self.name = name
        self.flight_events = flight_events


class InvariantMonitor:
    """Periodically re-derives the stack's invariants from live state."""

    def __init__(self, server, interval: Optional[float] = None,
                 recorder=None, raise_on_violation: bool = True):
        self.server = server
        self.env = server.env
        #: Check cadence; defaults to the epoll timeout (one check per
        #: scheduling interval).
        self.interval = (interval if interval is not None
                         else server.config.epoll_timeout)
        self.recorder = recorder if recorder is not None else (
            server.tracer.recorder if server.tracer is not None else None)
        self.raise_on_violation = raise_on_violation
        #: Violations recorded (at most one when raising).
        self.violations: List[InvariantViolation] = []
        #: invariant name -> number of passing evaluations.
        self.checks_passed: Dict[str, int] = {}
        self.ticks = 0
        self._armed = False
        #: worker_id -> connections reset at failure detection.
        self._resets: Dict[int, int] = {}
        #: Workers that crashed at least once: their WST connection column
        #: legitimately goes stale (a dead publisher never decrements, and
        #: a restarted process inherits the stale base).
        self._crashed_ever = set()
        self._wrapped_detect = None
        self._wrapped_crash = None
        self._shadowed = (False, False)
        self._last_now = self.env.now
        #: worker_id -> (total_waits, total_wakeups) from the previous tick
        #: where the worker slept on pending-ready events.
        self._sleep_suspects: Dict[int, tuple] = {}

    # -- lifecycle -------------------------------------------------------
    def attach(self) -> "InvariantMonitor":
        """Arm the monitor: wrap the crash paths, start the check loop."""
        if self._armed:
            raise RuntimeError("monitor already attached")
        server = self.server
        orig_detect = server.detect_and_clean_worker
        orig_crash = server.crash_worker

        def detect_and_clean(worker_id: int) -> int:
            self._crashed_ever.add(worker_id)
            blast = orig_detect(worker_id)
            self._resets[worker_id] = self._resets.get(worker_id, 0) + blast
            return blast

        def crash_worker(worker_id, cleanup_delay=None):
            self._crashed_ever.add(worker_id)
            return orig_crash(worker_id, cleanup_delay)

        # Remember whether the instance already shadowed the methods (a
        # nested wrapper): restore exactly that state on detach.
        self._shadowed = ("detect_and_clean_worker" in server.__dict__,
                          "crash_worker" in server.__dict__)
        self._wrapped_detect = orig_detect
        self._wrapped_crash = orig_crash
        server.detect_and_clean_worker = detect_and_clean
        server.crash_worker = crash_worker
        self._armed = True
        # A self-rescheduling callback, not a process: callbacks run
        # inline in the dispatch loop, so a violation raised here
        # propagates straight out of ``env.run`` instead of dying inside
        # a process event nobody waits on.
        self.env.schedule_callback(self.interval, self._tick)
        tracer = server.tracer
        if tracer is not None:
            tracer.instant("check.arm", "check", interval=self.interval)
        return self

    def detach(self) -> None:
        """Stop the loop and unwrap the server (idempotent)."""
        self._armed = False
        if self._wrapped_detect is not None:
            server = self.server
            if self._shadowed[0]:
                server.detect_and_clean_worker = self._wrapped_detect
            else:
                server.__dict__.pop("detect_and_clean_worker", None)
            if self._shadowed[1]:
                server.crash_worker = self._wrapped_crash
            else:
                server.__dict__.pop("crash_worker", None)
            self._wrapped_detect = None
            self._wrapped_crash = None

    def _tick(self) -> None:
        if not self._armed:
            return
        self.check_now()
        self.env.schedule_callback(self.interval, self._tick)

    # -- violation plumbing ----------------------------------------------
    def _violate(self, name: str, message: str) -> None:
        dump = self.recorder.dump() if self.recorder is not None else None
        violation = InvariantViolation(name, message, flight_events=dump)
        self.violations.append(violation)
        tracer = self.server.tracer
        if tracer is not None:
            tracer.instant("check.violation", "check", invariant=name,
                           message=message)
        if self.raise_on_violation:
            raise violation

    def _passed(self, name: str) -> None:
        self.checks_passed[name] = self.checks_passed.get(name, 0) + 1

    # -- the invariants ---------------------------------------------------
    def check_now(self) -> None:
        """Evaluate every invariant against the current live state."""
        self.ticks += 1
        self._check_clock()
        self._check_conservation()
        self._check_bitmap_wst()
        self._check_lost_wakeup()
        self._check_prequal()
        self._check_splice()

    @staticmethod
    def _client_conns(worker) -> int:
        """Live client connections (probe streams are infrastructure)."""
        return sum(1 for conn in worker.conns.values()
                   if conn.tenant_id >= 0)

    def _check_clock(self) -> None:
        now = self.env.now
        if now < self._last_now:
            self._violate(
                "clock", f"sim clock ran backwards: {self._last_now} -> {now}")
        self._last_now = now
        for group in self.server.groups:
            for rank in range(len(group.worker_ids)):
                t, _events, _conns = group.wst.read_worker(rank)
                if t > now:
                    self._violate(
                        "clock",
                        f"WST timestamp of rank {rank} is in the future: "
                        f"{t} > now {now}")
                    return
        self._passed("clock")

    def _check_conservation(self) -> None:
        from ..lb.dispatcher import DispatcherWorker

        total_accepted = 0
        for worker in self.server.workers:
            accepted = worker.metrics.accepted
            total_accepted += accepted
            if isinstance(worker, DispatcherWorker):
                # The dispatcher accepts on behalf of its backends; its
                # own ledger is the backends', checked separately.
                continue
            in_flight = self._client_conns(worker)
            closed = worker.metrics.closed
            resets = self._resets.get(worker.worker_id, 0)
            if accepted != closed + in_flight + resets:
                self._violate(
                    "conservation",
                    f"worker {worker.worker_id}: accepted {accepted} != "
                    f"closed {closed} + in-flight {in_flight} + "
                    f"reset {resets}")
                return
        device_accepted = self.server.metrics.connections_accepted
        if device_accepted != total_accepted:
            self._violate(
                "conservation",
                f"device accepted {device_accepted} != per-worker sum "
                f"{total_accepted}")
            return
        self._passed("conservation")

    def _check_bitmap_wst(self) -> None:
        server = self.server
        if not server.groups:
            self._passed("bitmap_wst")
            return
        for group in server.groups:
            width = len(group.worker_ids)
            bitmap = group.sel_map.read_from_user(group.scheduler.sel_key)
            if bitmap >> width:
                self._violate(
                    "bitmap_wst",
                    f"group {group.group_id}: selection bitmap {bitmap:#x} "
                    f"has set bits beyond the group width {width}")
                return
            for rank in range(width):
                worker = server.workers[group.worker_ids[rank]]
                if bitmap & (1 << rank):
                    if worker.is_alive and not group.sock_map.installed(rank):
                        self._violate(
                            "bitmap_wst",
                            f"group {group.group_id}: bit {rank} selects "
                            f"alive worker {worker.worker_id} with no "
                            f"installed sockarray slot")
                        return
                if (worker.is_alive
                        and worker.worker_id not in self._crashed_ever):
                    _t, _events, wst_conns = group.wst.read_worker(rank)
                    client_conns = self._client_conns(worker)
                    if wst_conns != client_conns:
                        self._violate(
                            "bitmap_wst",
                            f"group {group.group_id}: WST conn column of "
                            f"rank {rank} is {wst_conns}, worker "
                            f"{worker.worker_id} holds {client_conns}")
                        return
        self._passed("bitmap_wst")

    def _check_lost_wakeup(self) -> None:
        suspects: Dict[int, tuple] = {}
        for worker in self.server.workers:
            if not worker.is_alive:
                continue
            epoll = worker.epoll
            if epoll.ready_count and epoll.is_sleeping:
                progress = (epoll.total_waits, epoll.total_wakeups)
                previous = self._sleep_suspects.get(worker.worker_id)
                if previous == progress:
                    self._violate(
                        "lost_wakeup",
                        f"worker {worker.worker_id} slept through "
                        f"{epoll.ready_count} ready fd(s) for two check "
                        f"intervals (waits={progress[0]}, "
                        f"wakeups={progress[1]})")
                    return
                suspects[worker.worker_id] = progress
        self._sleep_suspects = suspects
        self._passed("lost_wakeup")

    def _check_prequal(self) -> None:
        prequal = getattr(self.server, "prequal", None)
        if prequal is None:
            self._passed("probe_pool")
            return
        pool = prequal.pool
        if not pool.conserved():
            self._violate(
                "probe_pool",
                f"probe-pool ledger broken: issued {pool.issued} != "
                f"consumed {pool.consumed} + evicted {pool.evicted} + "
                f"in-pool {len(pool.entries)}")
            return
        if len(pool.entries) > pool.capacity:
            self._violate(
                "probe_pool",
                f"probe pool holds {len(pool.entries)} samples, capacity "
                f"is {pool.capacity}")
            return
        self._passed("probe_pool")

    def _check_splice(self) -> None:
        splice = getattr(self.server, "splice", None)
        if splice is None:
            self._passed("splice_ledger")
            return
        engine = splice.engine
        if not engine.conserved():
            self._violate(
                "splice_ledger",
                f"splice ledger broken: requests_in {engine.requests_in} != "
                f"forwarded {engine.requests_forwarded} + dropped "
                f"{engine.requests_dropped} + in-flight "
                f"{engine.requests_in_flight} (bytes_in {engine.bytes_in}, "
                f"forwarded {engine.bytes_forwarded}, dropped "
                f"{engine.bytes_dropped}, in-flight {engine.bytes_in_flight})")
            return
        sockmap = splice.sockmap
        if len(sockmap) > sockmap.capacity:
            self._violate(
                "splice_ledger",
                f"SOCKMAP holds {len(sockmap)} entries, capacity is "
                f"{sockmap.capacity}")
            return
        self._passed("splice_ledger")

    # -- end-of-run checks -------------------------------------------------
    def finalize(self) -> Dict[str, int]:
        """Run a last tick plus the trace-stream monotonicity sweep.

        Returns the ``checks_passed`` counters (handy for reporting).
        Call after ``env.run`` returns; also detaches the monitor.
        """
        self.check_now()
        tracer = self.server.tracer
        events = None
        if tracer is not None and tracer.keep_events:
            events = tracer.events
        elif self.recorder is not None:
            events = self.recorder.snapshot()
        if events:
            last_ts, last_seq = events[0].ts, events[0].seq
            for event in events[1:]:
                if event.ts < last_ts or event.seq <= last_seq:
                    self._violate(
                        "trace_monotonic",
                        f"trace event #{event.seq} ({event.name}) at "
                        f"t={event.ts} regressed behind #{last_seq} at "
                        f"t={last_ts}")
                    break
                last_ts, last_seq = event.ts, event.seq
            else:
                self._passed("trace_monotonic")
        self.detach()
        return dict(self.checks_passed)


def watch(server, interval: Optional[float] = None, recorder=None,
          raise_on_violation: bool = True) -> InvariantMonitor:
    """Attach an :class:`InvariantMonitor` to ``server`` and return it."""
    return InvariantMonitor(
        server, interval=interval, recorder=recorder,
        raise_on_violation=raise_on_violation).attach()
