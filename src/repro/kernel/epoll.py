"""Simulated epoll instances.

One :class:`Epoll` per worker.  The model follows the kernel closely enough
to reproduce every scheduling pathology the paper measures:

- ``ctl_add`` registers a wake entry on the fd's wait queue.  For shared
  listening sockets the entry may carry the exclusive flag
  (``EPOLLEXCLUSIVE``); entries are head-inserted by the wait queue, giving
  the LIFO preference of epoll exclusive.
- The wake callback (our ``ep_poll_callback``) always marks the fd ready in
  this instance's ready set, and reports a *successful wakeup* only when the
  owner is actually blocked in ``wait()``.  An exclusive wake therefore
  skips busy workers and keeps walking — precisely Fig. A2.
- ``wait()`` is level-triggered by default: delivered fds are re-polled on
  the next call and stay ready while data remains.  Edge-triggered fds are
  delivered once per wake.

``wait()`` is a generator — workers drive it with ``yield from`` inside
their event-loop process.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional

from ..sim.engine import Environment, Event
from ..sim.monitor import Samples
from .socket import EPOLLIN
from .waitqueue import WaitEntry

__all__ = ["Epoll", "EpollEvent", "MAX_EVENTS"]

#: Default epoll_wait() batch size (event_list capacity in Fig. 9).
MAX_EVENTS = 64


class EpollEvent(NamedTuple):
    """One event returned from ``wait()``: the fd object and its mask."""

    fd: object
    mask: int


class _Interest(NamedTuple):
    entry: WaitEntry
    edge_triggered: bool


class Epoll:
    """An epoll instance bound to one worker."""

    def __init__(self, env: Environment, name: str = "",
                 collect_stats: bool = True, worker_id: Optional[int] = None,
                 tracer=None):
        self.env = env
        self.name = name
        #: Owning worker id, for trace attribution (None = unknown).
        self.worker_id = worker_id
        #: Optional :class:`repro.obs.Tracer` (None = untraced).
        self.tracer = tracer
        self._interest: Dict[object, _Interest] = {}
        #: fd -> accumulated ready mask (insertion ordered, like the kernel's
        #: ready list).
        self._ready: Dict[object, int] = {}
        self._sleeper: Optional[Event] = None
        # -- statistics (Figs. 4 & 5) ---------------------------------------
        self.collect_stats = collect_stats
        self.events_per_wait = Samples("events_per_wait")
        self.blocking_times = Samples("blocking_time")
        self.total_wakeups = 0
        self.total_waits = 0

    # -- registration ---------------------------------------------------
    def ctl_add(self, fd: object, exclusive: bool = False,
                edge_triggered: bool = False) -> None:
        """EPOLL_CTL_ADD: watch ``fd``; optionally EPOLLEXCLUSIVE / EPOLLET."""
        if fd in self._interest:
            raise ValueError(f"fd {fd!r} already in interest list (EEXIST)")
        entry = WaitEntry(self._poll_callback, exclusive=exclusive, owner=fd)
        self._interest[fd] = _Interest(entry, edge_triggered)
        fd.wait_queue.add(entry)
        # Level-triggered semantics: if the fd is already ready at add time
        # it must be reported (the kernel checks revents at insertion).
        if not edge_triggered:
            mask = fd.poll()
            if mask:
                self._ready[fd] = self._ready.get(fd, 0) | mask

    def ctl_del(self, fd: object) -> None:
        """EPOLL_CTL_DEL: stop watching ``fd``."""
        interest = self._interest.pop(fd, None)
        if interest is None:
            raise ValueError(f"fd {fd!r} not in interest list (ENOENT)")
        if interest.entry.queue is not None:
            fd.wait_queue.remove(interest.entry)
        self._ready.pop(fd, None)

    def watches(self, fd: object) -> bool:
        return fd in self._interest

    def watched_fds(self) -> List[object]:
        """Snapshot of the interest list (restart cleanup, diagnostics)."""
        return list(self._interest)

    @property
    def interest_count(self) -> int:
        return len(self._interest)

    @property
    def ready_count(self) -> int:
        """Pending-ready fds not yet harvested (diagnostics; no counters)."""
        return len(self._ready)

    @property
    def is_sleeping(self) -> bool:
        """True while the owner is blocked inside ``wait()``."""
        return self._sleeper is not None and not self._sleeper.triggered

    # -- kernel-side wakeup path ------------------------------------------
    def _poll_callback(self, entry: WaitEntry, key: int) -> bool:
        """Our ``ep_poll_callback``: mark ready, wake the sleeper if any.

        Returns True only when a sleeping owner was actually woken, which
        is what lets an exclusive wait-queue traversal skip busy workers.
        """
        fd = entry.owner
        mask = key if key else EPOLLIN
        self._ready[fd] = self._ready.get(fd, 0) | mask
        woke = False
        if self._sleeper is not None and not self._sleeper.triggered:
            self.total_wakeups += 1
            self._sleeper.succeed()
            woke = True
        tracer = self.tracer
        if tracer is not None:
            tracer.instant("epoll.wakeup", "kernel", worker=self.worker_id,
                           woke=woke, mask=mask)
        return woke

    # -- userspace-side wait path ------------------------------------------
    def _harvest(self, max_events: int) -> List[EpollEvent]:
        """Collect ready events, re-arming level-triggered fds still ready."""
        if not self._ready:
            return []  # nothing pending: skip the list/dict churn entirely
        out: List[EpollEvent] = []
        rearmed: Dict[object, int] = {}
        pending = list(self._ready.items())
        self._ready.clear()
        for index, (fd, stored_mask) in enumerate(pending):
            if len(out) >= max_events:
                # Batch full: keep the remainder ready for the next call.
                for rest_fd, rest_mask in pending[index:]:
                    rearmed[rest_fd] = rearmed.get(rest_fd, 0) | rest_mask
                break
            interest = self._interest.get(fd)
            if interest is None:
                continue  # deleted since it became ready
            if interest.edge_triggered:
                # ET: deliver the stored edge once, no re-poll, no re-arm.
                out.append(EpollEvent(fd, stored_mask))
                continue
            mask = fd.poll()
            if not mask:
                continue  # spurious (race consumed the data): LT drops it
            out.append(EpollEvent(fd, mask))
            # LT re-arm: keep it on the ready list; the next wait() re-polls
            # and drops it if userspace consumed everything by then.
            rearmed[fd] = mask
        self._ready.update(rearmed)
        return out

    def wait(self, timeout: float, max_events: int = MAX_EVENTS):
        """``epoll_wait(2)``; use as ``events = yield from epoll.wait(t)``.

        Returns immediately with available events; otherwise blocks until a
        wakeup or for ``timeout`` (returning ``[]`` on timeout, like the
        syscall returning 0).
        """
        self.total_waits += 1
        tracer = self.tracer
        events = self._harvest(max_events)
        if events or timeout == 0:
            if self.collect_stats:
                self.events_per_wait.add(len(events))
                self.blocking_times.add(0.0)
            if tracer is not None:
                tracer.instant("epoll.dispatch", "worker",
                               worker=self.worker_id, n_events=len(events),
                               blocked=0.0)
            return events
        entered = self.env.now
        if tracer is not None:
            tracer.begin("epoll.wait", "worker", worker=self.worker_id)
        self._sleeper = self.env.event()
        yield self._sleeper | self.env.timeout(timeout)
        self._sleeper = None
        events = self._harvest(max_events)
        if self.collect_stats:
            self.events_per_wait.add(len(events))
            self.blocking_times.add(self.env.now - entered)
        if tracer is not None:
            tracer.end("epoll.wait", "worker", worker=self.worker_id)
            tracer.instant("epoll.dispatch", "worker",
                           worker=self.worker_id, n_events=len(events),
                           blocked=self.env.now - entered)
        return events

    def close(self) -> None:
        """Drop all interest entries (worker death)."""
        for fd in list(self._interest):
            self.ctl_del(fd)
        self._sleeper = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Epoll {self.name} interest={len(self._interest)} "
                f"ready={len(self._ready)}>")
