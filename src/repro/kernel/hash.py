"""Kernel-style flow hashing.

Implements the two primitives Algorithm 2 of the paper relies on:

- a Jenkins-style hash (``jhash``) of the connection 4-tuple, standing in
  for the precomputed skb hash the kernel feeds to reuseport selection; and
- ``reciprocal_scale(value, range)`` — the kernel's multiplicative trick to
  map a 32-bit hash uniformly onto ``[0, range)`` without a division.

Both are deterministic and mirror the Linux implementations bit-for-bit at
32-bit width, so hash-collision behaviour (the reuseport failure mode under
heavy hitters, §2.2) is reproduced faithfully.
"""

from __future__ import annotations

from typing import NamedTuple

__all__ = ["FourTuple", "jhash_4tuple", "jhash_words", "reciprocal_scale"]

_MASK32 = 0xFFFFFFFF
#: The kernel's JHASH_INITVAL (an arbitrary golden-ratio constant).
JHASH_INITVAL = 0xDEADBEEF


class FourTuple(NamedTuple):
    """A connection 4-tuple; addresses and ports are plain integers."""

    src_ip: int
    src_port: int
    dst_ip: int
    dst_port: int

    def reversed(self) -> "FourTuple":
        """The return-path tuple."""
        return FourTuple(self.dst_ip, self.dst_port, self.src_ip, self.src_port)


def _rol32(value: int, bits: int) -> int:
    value &= _MASK32
    return ((value << bits) | (value >> (32 - bits))) & _MASK32


def _jhash_mix(a: int, b: int, c: int) -> tuple[int, int, int]:
    a = (a - c) & _MASK32
    a ^= _rol32(c, 4)
    c = (c + b) & _MASK32
    b = (b - a) & _MASK32
    b ^= _rol32(a, 6)
    a = (a + c) & _MASK32
    c = (c - b) & _MASK32
    c ^= _rol32(b, 8)
    b = (b + a) & _MASK32
    a = (a - c) & _MASK32
    a ^= _rol32(c, 16)
    c = (c + b) & _MASK32
    b = (b - a) & _MASK32
    b ^= _rol32(a, 19)
    a = (a + c) & _MASK32
    c = (c - b) & _MASK32
    c ^= _rol32(b, 4)
    b = (b + a) & _MASK32
    return a, b, c


def _jhash_final(a: int, b: int, c: int) -> int:
    c ^= b
    c = (c - _rol32(b, 14)) & _MASK32
    a ^= c
    a = (a - _rol32(c, 11)) & _MASK32
    b ^= a
    b = (b - _rol32(a, 25)) & _MASK32
    c ^= b
    c = (c - _rol32(b, 16)) & _MASK32
    a ^= c
    a = (a - _rol32(c, 4)) & _MASK32
    b ^= a
    b = (b - _rol32(a, 14)) & _MASK32
    c ^= b
    c = (c - _rol32(b, 24)) & _MASK32
    return c


def jhash_words(words: list[int], initval: int = 0) -> int:
    """Jenkins lookup3 hash over 32-bit words (the kernel's ``jhash2``)."""
    length = len(words)
    a = b = c = (JHASH_INITVAL + (length << 2) + initval) & _MASK32
    index = 0
    while length > 3:
        a = (a + words[index]) & _MASK32
        b = (b + words[index + 1]) & _MASK32
        c = (c + words[index + 2]) & _MASK32
        a, b, c = _jhash_mix(a, b, c)
        index += 3
        length -= 3
    if length == 3:
        c = (c + words[index + 2]) & _MASK32
    if length >= 2:
        b = (b + words[index + 1]) & _MASK32
    if length >= 1:
        a = (a + words[index]) & _MASK32
        c = _jhash_final(a, b, c)
    return c & _MASK32


def jhash_4tuple(four_tuple: FourTuple, initval: int = 0) -> int:
    """32-bit flow hash of a 4-tuple, as the kernel computes for reuseport.

    Ports are packed into one word like ``inet_ehashfn`` packs sport/dport.
    """
    ports = ((four_tuple.src_port & 0xFFFF) << 16) | (four_tuple.dst_port & 0xFFFF)
    return jhash_words(
        [four_tuple.src_ip & _MASK32, four_tuple.dst_ip & _MASK32, ports],
        initval,
    )


def reciprocal_scale(value: int, ep_ro: int) -> int:
    """Scale a 32-bit ``value`` into ``[0, ep_ro)`` (Linux ``reciprocal_scale``).

    Computes ``(value * ep_ro) >> 32`` — uniform when ``value`` is uniform,
    and far cheaper than a modulo in kernel context.  ``ep_ro`` must be
    positive.
    """
    if ep_ro <= 0:
        raise ValueError(f"reciprocal_scale range must be positive, got {ep_ro}")
    return ((value & _MASK32) * ep_ro) >> 32
