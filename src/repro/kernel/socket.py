"""Simulated sockets: listening sockets with accept queues, connection fds.

A :class:`ListeningSocket` owns the kernel accept queue for one bound port
(or one reuseport member socket).  Completed handshakes are enqueued here and
wake the socket's wait queue; userspace workers later ``accept()`` them.

A :class:`ConnSocket` is the file descriptor of an accepted connection.  Its
readiness reflects undelivered request events on the connection.

Both expose the polling interface epoll consumes: a ``wait_queue`` and a
``poll()`` method returning an event mask.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Optional

from .waitqueue import WaitQueue

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .tcp import Connection

__all__ = [
    "EPOLLIN",
    "EPOLLOUT",
    "EPOLLERR",
    "EPOLLHUP",
    "ListeningSocket",
    "ConnSocket",
    "SOMAXCONN",
]

EPOLLIN = 0x001
EPOLLOUT = 0x004
EPOLLERR = 0x008
EPOLLHUP = 0x010

#: Default accept-queue backlog (Linux's net.core.somaxconn since 5.4).
SOMAXCONN = 4096


class ListeningSocket:
    """A listening socket with its own accept queue.

    In shared mode (epoll exclusive), one such socket exists per port and
    every worker's epoll registers on its wait queue.  In reuseport mode,
    each worker owns a dedicated ``ListeningSocket`` in the port's reuseport
    group.
    """

    _next_id = 0

    def __init__(self, port: int, backlog: int = SOMAXCONN,
                 owner: Optional[object] = None,
                 rotate_on_wake: bool = False,
                 waiter_insertion: str = "head"):
        ListeningSocket._next_id += 1
        self.id = ListeningSocket._next_id
        self.port = port
        self.backlog = backlog
        #: The worker that owns this socket (reuseport mode), if dedicated.
        self.owner = owner
        self.wait_queue = WaitQueue(rotate_on_wake=rotate_on_wake,
                                    insertion=waiter_insertion)
        self.accept_queue: Deque["Connection"] = deque()
        self.closed = False
        # -- statistics ----------------------------------------------------
        self.total_enqueued = 0
        self.total_accepted = 0
        self.total_dropped = 0

    # -- kernel side -------------------------------------------------------
    def enqueue(self, connection: "Connection") -> bool:
        """Place a completed handshake on the accept queue and wake waiters.

        Returns False (and counts a drop) when the backlog is full — the
        SYN-flood / overloaded-worker overflow path.
        """
        if self.closed:
            self.total_dropped += 1
            return False
        if len(self.accept_queue) >= self.backlog:
            self.total_dropped += 1
            return False
        self.accept_queue.append(connection)
        connection.listen_socket = self
        self.total_enqueued += 1
        self.wait_queue.wake(key=EPOLLIN)
        return True

    # -- userspace side ------------------------------------------------------
    def accept(self) -> Optional["Connection"]:
        """Dequeue one pending connection, or None if the queue is empty.

        A None return models ``accept()`` hitting EAGAIN after an exclusive
        wakeup race (another worker drained the queue first).
        """
        if not self.accept_queue:
            return None
        self.total_accepted += 1
        return self.accept_queue.popleft()

    def poll(self) -> int:
        """Level-triggered readiness mask."""
        if self.closed:
            return EPOLLERR | EPOLLHUP
        return EPOLLIN if self.accept_queue else 0

    @property
    def queue_depth(self) -> int:
        return len(self.accept_queue)

    def close(self) -> None:
        """Close the socket; pending connections are dropped (RST path)."""
        self.closed = True
        while self.accept_queue:
            conn = self.accept_queue.popleft()
            conn.reset("listening socket closed")
        self.wait_queue.wake(key=EPOLLERR | EPOLLHUP)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<ListeningSocket #{self.id} port={self.port} "
                f"depth={len(self.accept_queue)}>")


class ConnSocket:
    """File descriptor of an accepted connection.

    Readability is level-triggered on the count of undelivered events the
    connection holds (incoming request data, FIN, errors).  The owning
    worker's epoll instance registers a non-exclusive entry on
    ``wait_queue``.
    """

    _next_fd = 1000

    def __init__(self, connection: "Connection"):
        ConnSocket._next_fd += 1
        self.fd = ConnSocket._next_fd
        self.connection = connection
        self.wait_queue = WaitQueue()
        #: Number of readable events not yet returned to userspace.
        self._pending_events = 0
        self.error = False
        self.hangup = False
        self.closed = False

    def push_readable(self, count: int = 1) -> None:
        """Data arrived: raise readability and wake the owner's epoll."""
        if self.closed:
            return
        self._pending_events += count
        self.wait_queue.wake(key=EPOLLIN)

    def consume_readable(self, count: int = 1) -> None:
        """Userspace read some events off this fd."""
        self._pending_events = max(0, self._pending_events - count)

    def push_hangup(self) -> None:
        """Peer closed (FIN): the fd becomes readable with HUP."""
        if self.closed:
            return
        self.hangup = True
        self.wait_queue.wake(key=EPOLLIN | EPOLLHUP)

    def push_error(self) -> None:
        """Connection error (e.g. RST)."""
        if self.closed:
            return
        self.error = True
        self.wait_queue.wake(key=EPOLLERR)

    def poll(self) -> int:
        if self.closed:
            return 0
        mask = 0
        if self._pending_events > 0:
            mask |= EPOLLIN
        if self.hangup:
            mask |= EPOLLIN | EPOLLHUP
        if self.error:
            mask |= EPOLLERR
        return mask

    @property
    def pending_events(self) -> int:
        return self._pending_events

    def close(self) -> None:
        self.closed = True
        self._pending_events = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ConnSocket fd={self.fd} pending={self._pending_events}>"
