"""TCP connection machinery: requests, connections, and the network stack.

The :class:`NetStack` is the per-LB-device kernel entry point.  Traffic
generators call :meth:`NetStack.connect` with a new :class:`Connection`; the
stack resolves the destination port to either a shared listening socket
(epoll-exclusive deployments) or a reuseport group, completes the handshake,
and enqueues the connection on the chosen accept queue — waking the
appropriate wait queues along the way.

Requests model L7 work at exactly the granularity the Hermes scheduler can
observe (§5.2.1): a request is a sequence of fd-readiness *events*, each
carrying a userspace processing time.  Packet sizes and handler kinds ride
along for workload realism but the kernel never inspects them — that
asymmetry is the paper's core motivation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from enum import Enum
from typing import Callable, List, Optional, Tuple

from ..sim.engine import Environment
from .hash import FourTuple
from .nic import Nic
from .reuseport import ReuseportGroup
from .socket import ConnSocket, ListeningSocket

__all__ = ["Request", "Connection", "ConnState", "NetStack", "PortBinding"]


@dataclass
class Request:
    """One L7 request on a connection.

    ``event_times`` holds the userspace CPU time of each readiness event the
    request generates (e.g. header read, body read, response write).  The
    next event of a request becomes readable as soon as the previous one has
    been processed, modelling streamed data under run-to-completion.
    """

    tenant_id: int = 0
    size_bytes: int = 512
    event_times: Tuple[float, ...] = (0.001,)
    handler: str = "http"
    arrival_time: float = -1.0
    start_service_time: float = -1.0
    completed_time: float = -1.0
    #: Index of the next event awaiting processing.
    next_event: int = 0
    #: Invoked by the worker when the request completes (probe replies use
    #: this to report back to their issuer on the sim clock).
    on_complete: Optional[Callable[["Request"], None]] = None

    @property
    def total_service(self) -> float:
        return sum(self.event_times)

    @property
    def n_events(self) -> int:
        return len(self.event_times)

    @property
    def done(self) -> bool:
        return self.next_event >= len(self.event_times)

    @property
    def latency(self) -> Optional[float]:
        if self.completed_time < 0 or self.arrival_time < 0:
            return None
        return self.completed_time - self.arrival_time


class ConnState(Enum):
    SYN_SENT = "syn_sent"
    ESTABLISHED = "established"   # handshake done, waiting in accept queue
    ACCEPTED = "accepted"         # owned by a worker
    CLOSED = "closed"
    RESET = "reset"
    REFUSED = "refused"           # backlog overflow / port unbound


class Connection:
    """A client connection traversing the LB."""

    _ids = itertools.count(1)

    def __init__(self, four_tuple: FourTuple, tenant_id: int = 0,
                 created_time: float = 0.0):
        self.id = next(Connection._ids)
        self.four_tuple = four_tuple
        self.tenant_id = tenant_id
        self.state = ConnState.SYN_SENT
        self.created_time = created_time
        self.established_time: Optional[float] = None
        self.accepted_time: Optional[float] = None
        self.closed_time: Optional[float] = None
        self.reset_reason: Optional[str] = None
        #: The accept queue this connection landed on.
        self.listen_socket: Optional[ListeningSocket] = None
        #: The fd created at accept time; None until accepted.
        self.fd: Optional[ConnSocket] = None
        #: The worker that accepted us (opaque to the kernel layer).
        self.worker: Optional[object] = None
        #: Requests delivered but not yet fully processed.
        self.inbox: List[Request] = []
        self.requests_completed = 0
        #: Client closed its end; worker must observe and clean up.
        self.fin_pending = False
        #: Kernel splice path (``repro.splice.SplicePath``); when set, data
        #: and FIN/RST are routed to the splice engine instead of the fd's
        #: epoll wake chain — the flow never wakes its worker again.
        self.splice = None

    @property
    def port(self) -> int:
        return self.four_tuple.dst_port

    # -- data-path events --------------------------------------------------
    def deliver_request(self, request: Request, now: float) -> None:
        """A request arrives from the client.

        The first event of the request becomes readable immediately; later
        events surface as the worker consumes earlier ones (streamed data).
        """
        if self.state in (ConnState.CLOSED, ConnState.RESET, ConnState.REFUSED):
            raise ValueError(f"cannot deliver to {self.state.value} connection")
        request.arrival_time = now
        self.inbox.append(request)
        if self.splice is not None:
            # Spliced flow: the kernel forwards the payload itself; no
            # readable event ever reaches the worker's epoll.
            self.splice.on_deliver(request)
            return
        if self.fd is not None:
            # Each request event is one readable unit (streamed chunks that
            # are already buffered in the kernel when the request lands).
            self.fd.push_readable(request.n_events)

    def client_close(self) -> None:
        """Client sends FIN."""
        if self.state in (ConnState.CLOSED, ConnState.RESET, ConnState.REFUSED):
            return
        self.fin_pending = True
        if self.splice is not None:
            # Spliced flow: teardown is kernel-side too (unsplice after the
            # lane drains) — the FIN does not wake the worker.
            self.splice.on_client_close()
            return
        if self.fd is not None:
            self.fd.push_hangup()

    def reset(self, reason: str) -> None:
        """Abort the connection (RST from either side)."""
        if self.state in (ConnState.RESET, ConnState.REFUSED):
            return
        self.state = ConnState.RESET
        self.reset_reason = reason
        if self.splice is not None:
            # Detach from the splice engine (SOCKMAP delete); anything
            # still on the kernel lane drains into the dropped ledger.
            self.splice.on_reset()
        if self.fd is not None:
            self.fd.push_error()

    # -- lifecycle transitions driven by the worker -------------------------
    def mark_accepted(self, worker: object, now: float) -> ConnSocket:
        """Create the conn fd at accept time; pending data is readable."""
        self.state = ConnState.ACCEPTED
        self.worker = worker
        self.accepted_time = now
        self.fd = ConnSocket(self)
        pending_units = sum(
            request.n_events - request.next_event for request in self.inbox)
        if pending_units:
            # Data that arrived while queued is immediately readable.
            self.fd.push_readable(pending_units)
        if self.fin_pending:
            self.fd.push_hangup()
        return self.fd

    def mark_closed(self, now: float) -> None:
        self.state = ConnState.CLOSED
        self.closed_time = now
        if self.fd is not None:
            self.fd.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Connection #{self.id} tenant={self.tenant_id} "
                f"port={self.port} {self.state.value}>")


@dataclass
class PortBinding:
    """How one destination port is bound on the device.

    Exactly one of ``shared`` (a single listening socket all workers epoll
    on) or ``group`` (a reuseport group of per-worker sockets) is set.
    """

    port: int
    shared: Optional[ListeningSocket] = None
    group: Optional[ReuseportGroup] = None

    def __post_init__(self):
        if (self.shared is None) == (self.group is None):
            raise ValueError("exactly one of shared/group must be set")


class NetStack:
    """The kernel network stack of one LB device."""

    def __init__(self, env: Environment, hash_seed: int = 0,
                 handshake_delay: float = 0.0, nic: Optional[Nic] = None,
                 tracer=None):
        self.env = env
        self.hash_seed = hash_seed
        self.handshake_delay = handshake_delay
        self.nic = nic
        #: Optional :class:`repro.obs.Tracer`, propagated into every
        #: socket/group this stack creates (None = untraced).
        self.tracer = tracer
        self.bindings: dict[int, PortBinding] = {}
        # -- statistics -----------------------------------------------------
        self.total_syns = 0
        self.total_established = 0
        self.total_refused = 0

    # -- binding -----------------------------------------------------------
    def bind_shared(self, port: int, backlog: Optional[int] = None,
                    rotate_on_wake: bool = False,
                    waiter_insertion: str = "head") -> ListeningSocket:
        """Bind one shared listening socket to ``port``.

        ``rotate_on_wake`` turns on the epoll-roundrobin wait-queue
        variant; ``waiter_insertion="tail"`` models io_uring's FIFO
        wakeup order.
        """
        if port in self.bindings:
            raise ValueError(f"port {port} already bound")
        kwargs = {"rotate_on_wake": rotate_on_wake,
                  "waiter_insertion": waiter_insertion}
        if backlog is not None:
            kwargs["backlog"] = backlog
        socket = ListeningSocket(port, **kwargs)
        socket.wait_queue.tracer = self.tracer
        self.bindings[port] = PortBinding(port=port, shared=socket)
        return socket

    def bind_reuseport(self, port: int, owner: object,
                       backlog: Optional[int] = None) -> ListeningSocket:
        """Bind a per-worker SO_REUSEPORT socket to ``port``.

        Creates the reuseport group on first bind.
        """
        binding = self.bindings.get(port)
        if binding is None:
            binding = PortBinding(
                port=port, group=ReuseportGroup(port, self.hash_seed,
                                                tracer=self.tracer))
            self.bindings[port] = binding
        elif binding.group is None:
            raise ValueError(f"port {port} is bound without SO_REUSEPORT")
        kwargs = {"owner": owner}
        if backlog is not None:
            kwargs["backlog"] = backlog
        socket = ListeningSocket(port, **kwargs)
        socket.wait_queue.tracer = self.tracer
        binding.group.add(socket)
        return socket

    def group_for(self, port: int) -> ReuseportGroup:
        binding = self.bindings.get(port)
        if binding is None or binding.group is None:
            raise KeyError(f"port {port} has no reuseport group")
        return binding.group

    def unbind_socket(self, socket: ListeningSocket) -> None:
        """Remove a dead worker's socket (process exit)."""
        binding = self.bindings.get(socket.port)
        if binding is None:
            return
        if binding.group is not None and socket in binding.group.sockets:
            binding.group.remove(socket)
        elif binding.shared is socket:
            del self.bindings[socket.port]
        socket.close()

    # -- data path --------------------------------------------------------
    def connect(self, connection: Connection) -> bool:
        """Handle an incoming SYN: select socket, handshake, enqueue.

        Returns False when the connection is refused (unbound port or
        backlog overflow); the connection is marked REFUSED.
        """
        tracer = self.tracer
        if tracer is not None:
            # Scope the synchronous SYN chain (reuseport selection,
            # accept-queue wake, epoll callback) to this connection's id.
            with tracer.ctx.scope(conn=connection.id):
                tracer.instant("conn.syn", "net", port=connection.port,
                               tenant=connection.tenant_id)
                accepted = self._connect(connection)
                if not accepted:
                    tracer.instant("conn.refused", "net",
                                   reason=connection.reset_reason)
                return accepted
        return self._connect(connection)

    def _connect(self, connection: Connection) -> bool:
        self.total_syns += 1
        if self.nic is not None:
            self.nic.receive(connection.four_tuple)
            if self.nic.sample_loss():
                # SYN dropped at the NIC (loss-burst fault): the client sees
                # a refused connection and may retry via its reset handling.
                connection.state = ConnState.REFUSED
                connection.reset_reason = "syn lost (nic)"
                self.total_refused += 1
                return False
        binding = self.bindings.get(connection.port)
        socket: Optional[ListeningSocket] = None
        if binding is not None:
            if binding.group is not None:
                socket = binding.group.select(connection.four_tuple)
            elif binding.shared is not None and not binding.shared.closed:
                socket = binding.shared
        if socket is None:
            connection.state = ConnState.REFUSED
            connection.reset_reason = "port not bound"
            self.total_refused += 1
            return False
        connection.state = ConnState.ESTABLISHED
        connection.established_time = self.env.now + self.handshake_delay
        if self.handshake_delay > 0:
            self.env.schedule_callback(
                self.handshake_delay,
                lambda: self._finish_handshake(connection, socket))
            return True
        return self._finish_handshake(connection, socket)

    def _finish_handshake(self, connection: Connection,
                          socket: ListeningSocket) -> bool:
        tracer = self.tracer
        if tracer is not None and "conn" not in tracer.ctx.current:
            # Delayed handshakes fire from a callback outside connect()'s
            # scope; re-establish the connection context for the wake chain.
            with tracer.ctx.scope(conn=connection.id):
                return self._enqueue_handshake(connection, socket)
        return self._enqueue_handshake(connection, socket)

    def _enqueue_handshake(self, connection: Connection,
                           socket: ListeningSocket) -> bool:
        if not socket.enqueue(connection):
            connection.state = ConnState.REFUSED
            connection.reset_reason = "accept queue overflow"
            self.total_refused += 1
            return False
        self.total_established += 1
        return True

    def deliver(self, connection: Connection, request: Request) -> None:
        """Client data arrives on an established connection."""
        if self.nic is not None:
            self.nic.receive(connection.four_tuple)
            if self.nic.sample_loss():
                # Request data dropped at the NIC: it never reaches the
                # socket, as if the client's send were lost on the wire.
                return
        request.tenant_id = connection.tenant_id
        tracer = self.tracer
        if tracer is None:
            connection.deliver_request(request, self.env.now)
            return
        rid = tracer.request_id(request)
        with tracer.ctx.scope(conn=connection.id, request=rid):
            tracer.instant("request.arrival", "net", n_events=request.n_events,
                           size=request.size_bytes)
            connection.deliver_request(request, self.env.now)
