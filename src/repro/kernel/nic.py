"""NIC receive-side scaling (RSS) model.

Used by the Fig. 7 motivation experiment: RSS spreads *packets* evenly over
hardware queues, yet per-core CPU utilization stays unbalanced because L7
processing cost varies per connection.  The NIC only sees packet counts.

The model follows real RSS: a hash over the 4-tuple indexes a 128-entry
indirection table whose entries name receive queues.  RSS++-style rebalancing
is possible by reprogramming the table (`set_indirection`).
"""

from __future__ import annotations

from typing import List

from .hash import FourTuple, jhash_4tuple

__all__ = ["Nic", "RssPlusPlusBalancer", "INDIRECTION_TABLE_SIZE"]

#: Common hardware indirection table size.
INDIRECTION_TABLE_SIZE = 128


class Nic:
    """A NIC with ``n_queues`` receive queues fed by an RSS hash."""

    def __init__(self, n_queues: int, hash_seed: int = 0,
                 table_size: int = INDIRECTION_TABLE_SIZE):
        if n_queues < 1:
            raise ValueError(f"need at least one queue, got {n_queues}")
        self.n_queues = n_queues
        self.hash_seed = hash_seed
        #: Indirection table: hash-bucket -> queue id (round-robin default).
        self.indirection: List[int] = [
            i % n_queues for i in range(table_size)]
        #: Packets delivered per queue.
        self.queue_packets: List[int] = [0] * n_queues
        #: Bytes delivered per queue.
        self.queue_bytes: List[int] = [0] * n_queues
        #: Optional tap called per arrival — e.g. an RSS++ balancer's
        #: ``observe``.
        self.on_receive = None
        #: Loss-burst fault model (``repro.faults``): probability that an
        #: arrival is dropped at the NIC.  Zero = lossless, and the lossless
        #: path draws no random numbers.
        self.loss_prob = 0.0
        self._loss_rng = None
        self.packets_dropped = 0

    def rss_queue(self, four_tuple: FourTuple) -> int:
        """The receive queue RSS picks for this flow."""
        flow_hash = jhash_4tuple(four_tuple, self.hash_seed)
        bucket = flow_hash % len(self.indirection)
        return self.indirection[bucket]

    def receive(self, four_tuple: FourTuple, packets: int = 1,
                size_bytes: int = 0) -> int:
        """Account packet arrivals to the RSS-selected queue."""
        queue = self.rss_queue(four_tuple)
        self.queue_packets[queue] += packets
        self.queue_bytes[queue] += size_bytes
        if self.on_receive is not None:
            self.on_receive(four_tuple, packets)
        return queue

    def set_loss(self, prob: float, rng=None) -> None:
        """Arm (or with ``prob=0`` clear) the loss-burst fault model."""
        if not 0.0 <= prob <= 1.0:
            raise ValueError(f"loss probability must be in [0, 1], got {prob}")
        if prob > 0 and rng is None:
            raise ValueError("a nonzero loss probability needs an rng stream")
        self.loss_prob = prob
        self._loss_rng = rng if prob > 0 else None

    def sample_loss(self) -> bool:
        """True when the current arrival is dropped.  Draws from the fault
        stream only while a loss fault is armed — an unfaulted NIC performs
        zero RNG draws, preserving bit-identical unfaulted runs."""
        if self.loss_prob <= 0.0:
            return False
        if self._loss_rng.random() >= self.loss_prob:
            return False
        self.packets_dropped += 1
        return True

    def set_indirection(self, bucket: int, queue: int) -> None:
        """Reprogram one indirection entry (the RSS++ rebalancing knob)."""
        if not 0 <= queue < self.n_queues:
            raise ValueError(f"queue {queue} out of range")
        self.indirection[bucket % len(self.indirection)] = queue

    def reset_counters(self) -> None:
        self.queue_packets = [0] * self.n_queues
        self.queue_bytes = [0] * self.n_queues


class RssPlusPlusBalancer:
    """RSS++-style NIC rebalancing (Barbette et al., CoNEXT'19).

    Periodically migrates indirection-table buckets from the hottest queue
    to the coldest, equalizing *packet* counts.  §3's point: this is the
    right tool for L3/L4 (per-packet cost ≈ constant) and the wrong tool
    for L7 (per-connection cost varies wildly) — the experiment in
    ``repro.experiments.fig7`` quantifies exactly that gap.
    """

    def __init__(self, nic: Nic, buckets_per_round: int = 4):
        if buckets_per_round < 1:
            raise ValueError("buckets_per_round must be >= 1")
        self.nic = nic
        self.buckets_per_round = buckets_per_round
        #: Per-bucket packet counts observed since the last rebalance.
        self._bucket_packets = [0] * len(nic.indirection)
        self.rebalances = 0
        self.buckets_moved = 0

    def observe(self, four_tuple: FourTuple, packets: int = 1) -> None:
        """Account a flow's packets to its indirection bucket."""
        flow_hash = jhash_4tuple(four_tuple, self.nic.hash_seed)
        self._bucket_packets[flow_hash % len(self.nic.indirection)] += \
            packets

    def rebalance(self) -> int:
        """One RSS++ round: move the hottest queue's busiest buckets to
        the coldest queue.  Returns the number of buckets moved."""
        nic = self.nic
        queue_load = [0] * nic.n_queues
        for bucket, packets in enumerate(self._bucket_packets):
            queue_load[nic.indirection[bucket]] += packets
        hot = max(range(nic.n_queues), key=lambda q: queue_load[q])
        cold = min(range(nic.n_queues), key=lambda q: queue_load[q])
        if hot == cold or queue_load[hot] == queue_load[cold]:
            return 0
        surplus = (queue_load[hot] - queue_load[cold]) / 2
        hot_buckets = sorted(
            (b for b in range(len(nic.indirection))
             if nic.indirection[b] == hot),
            key=lambda b: self._bucket_packets[b], reverse=True)
        moved = 0
        transferred = 0
        for bucket in hot_buckets:
            if moved >= self.buckets_per_round or transferred >= surplus:
                break
            # Never empty the hot queue entirely.
            if moved + 1 >= len(hot_buckets):
                break
            nic.set_indirection(bucket, cold)
            transferred += self._bucket_packets[bucket]
            moved += 1
        self._bucket_packets = [0] * len(nic.indirection)
        self.rebalances += 1
        self.buckets_moved += moved
        return moved
