"""SO_REUSEPORT socket groups with an eBPF selection hook.

A :class:`ReuseportGroup` holds every socket bound to one port with
``SO_REUSEPORT``.  Incoming connections (at SYN time, before the handshake
completes) are mapped to a member socket either by:

- the default stateless hash — ``reciprocal_scale(jhash(4-tuple), n)`` over
  the group's socket array, exactly as ``reuseport_select_sock`` does; or
- an attached program (the ``SO_ATTACH_REUSEPORT_EBPF`` hook, Linux 4.5+),
  which may pick any member socket.  If the program declines (returns None)
  or picks an invalid/closed socket, the kernel falls back to the hash.

This is the hook Hermes overrides with Algorithm 2.
"""

from __future__ import annotations

from typing import List, Optional, Protocol

from .hash import FourTuple, jhash_4tuple, reciprocal_scale
from .socket import ListeningSocket

__all__ = ["ReuseportGroup", "ReuseportContext", "SocketSelector"]


class ReuseportContext:
    """What the kernel hands to the selection program for one SYN.

    Mirrors ``sk_reuseport_md``: the precomputed flow hash plus the raw
    tuple, and the size of the socket array.
    """

    __slots__ = ("hash", "four_tuple", "num_socks")

    def __init__(self, flow_hash: int, four_tuple: FourTuple, num_socks: int):
        self.hash = flow_hash
        self.four_tuple = four_tuple
        self.num_socks = num_socks


class SocketSelector(Protocol):
    """Anything attachable via ``SO_ATTACH_REUSEPORT_EBPF``."""

    def run(self, ctx: ReuseportContext) -> Optional[int]:
        """Return a socket-array index, or None to fall back to hashing."""
        ...  # pragma: no cover - protocol


class ReuseportGroup:
    """All sockets bound to one port with SO_REUSEPORT."""

    def __init__(self, port: int, hash_seed: int = 0, tracer=None):
        self.port = port
        self.hash_seed = hash_seed
        #: The kernel's socks[] array; index order is bind order.
        self.sockets: List[ListeningSocket] = []
        self._program: Optional[SocketSelector] = None
        #: Optional :class:`repro.obs.Tracer` (None = untraced).
        self.tracer = tracer
        # -- statistics -----------------------------------------------------
        self.selected_by_program = 0
        self.selected_by_hash = 0
        self.program_fallbacks = 0

    def __len__(self) -> int:
        return len(self.sockets)

    def add(self, socket: ListeningSocket) -> int:
        """Bind another socket into the group; returns its array index."""
        if socket.port != self.port:
            raise ValueError(
                f"socket port {socket.port} != group port {self.port}")
        if socket in self.sockets:
            raise ValueError("socket already in reuseport group")
        self.sockets.append(socket)
        return len(self.sockets) - 1

    def remove(self, socket: ListeningSocket) -> None:
        """Unbind a socket (process exit closes its fd)."""
        self.sockets.remove(socket)

    def attach_program(self, program: Optional[SocketSelector]) -> None:
        """SO_ATTACH_REUSEPORT_EBPF: install/replace the selection program."""
        self._program = program

    @property
    def program(self) -> Optional[SocketSelector]:
        return self._program

    def flow_hash(self, four_tuple: FourTuple) -> int:
        return jhash_4tuple(four_tuple, self.hash_seed)

    def select(self, four_tuple: FourTuple) -> Optional[ListeningSocket]:
        """Pick the member socket for an incoming SYN.

        Follows ``reuseport_select_sock``: try the attached program first;
        on decline or invalid result, fall back to hash selection over the
        socket array.  Returns None only when the group is empty.
        """
        tracer = self.tracer
        open_sockets = [s for s in self.sockets if not s.closed]
        if not open_sockets:
            if tracer is not None:
                tracer.instant("reuseport.select", "kernel", port=self.port,
                               via="none")
            return None
        flow_hash = self.flow_hash(four_tuple)
        if tracer is not None:
            tracer.begin("reuseport.select", "kernel", port=self.port,
                         hash=flow_hash, num_socks=len(self.sockets))
        if self._program is not None:
            ctx = ReuseportContext(flow_hash, four_tuple, len(self.sockets))
            index = self._program.run(ctx)
            if index is not None and 0 <= index < len(self.sockets):
                candidate = self.sockets[index]
                if not candidate.closed:
                    self.selected_by_program += 1
                    if tracer is not None:
                        tracer.end(
                            "reuseport.select", "kernel", via="program",
                            socket=candidate.id,
                            selected_worker=getattr(
                                candidate.owner, "worker_id", None))
                    return candidate
            self.program_fallbacks += 1
        self.selected_by_hash += 1
        chosen = open_sockets[reciprocal_scale(flow_hash, len(open_sockets))]
        if tracer is not None:
            tracer.end("reuseport.select", "kernel", via="hash",
                       fallback=self._program is not None, socket=chosen.id,
                       selected_worker=getattr(chosen.owner, "worker_id",
                                               None))
        return chosen
