"""Simulated Linux kernel substrate.

Faithful-in-behaviour models of the kernel mechanisms the paper builds on:
wait queues with exclusive/LIFO/roundrobin wakeups, epoll instances, accept
queues, SO_REUSEPORT groups with the eBPF selection hook, flow hashing, and
NIC RSS.
"""

from .epoll import MAX_EVENTS, Epoll, EpollEvent
from .hash import FourTuple, jhash_4tuple, jhash_words, reciprocal_scale
from .nic import Nic, RssPlusPlusBalancer
from .reuseport import ReuseportContext, ReuseportGroup
from .socket import (
    EPOLLERR,
    EPOLLHUP,
    EPOLLIN,
    EPOLLOUT,
    SOMAXCONN,
    ConnSocket,
    ListeningSocket,
)
from .tcp import Connection, ConnState, NetStack, PortBinding, Request
from .waitqueue import WaitEntry, WaitPolicy, WaitQueue

__all__ = [
    "Connection",
    "ConnSocket",
    "ConnState",
    "EPOLLERR",
    "EPOLLHUP",
    "EPOLLIN",
    "EPOLLOUT",
    "Epoll",
    "EpollEvent",
    "FourTuple",
    "ListeningSocket",
    "MAX_EVENTS",
    "NetStack",
    "Nic",
    "PortBinding",
    "ReuseportContext",
    "ReuseportGroup",
    "RssPlusPlusBalancer",
    "Request",
    "SOMAXCONN",
    "WaitEntry",
    "WaitPolicy",
    "WaitQueue",
    "jhash_4tuple",
    "jhash_words",
    "reciprocal_scale",
]
