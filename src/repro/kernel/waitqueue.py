"""Socket wait queues with Linux wakeup semantics.

This module reproduces the behaviour of ``__wake_up_common`` (Fig. A2 of the
paper), which is the root cause of the load imbalance Hermes addresses:

- Waiters are added to the *head* of the queue (``add_wait_queue`` /
  ``ep_ptable_queue_proc`` use head insertion), so the most recently
  registered waiter is tried first — the LIFO behaviour of epoll exclusive.
- On wakeup, the queue is walked from the head.  Each entry's wake function
  runs; if it reports a successful wakeup *and* the entry carries
  ``WQ_FLAG_EXCLUSIVE``, traversal stops.  Non-exclusive entries are all
  woken — the thundering herd.
- The (never-merged) epoll-roundrobin patch is also modelled: after a
  successful exclusive wakeup the entry is rotated to the tail.

Wake functions return True when they actually woke a sleeping waiter and
False when the waiter was already running (in which case traversal continues
to the next entry, exactly as the kernel's ``curr->func`` contract).
"""

from __future__ import annotations

from enum import Enum
from typing import Any, Callable, List, Optional

__all__ = ["WaitPolicy", "WaitEntry", "WaitQueue"]


class WaitPolicy(Enum):
    """How an entry behaves after it is woken."""

    #: Wake every entry regardless of success — pre-4.5 epoll herd.
    WAKE_ALL = "all"
    #: Stop at the first successful wakeup; entry stays at its position
    #: (head-inserted ⇒ LIFO preference) — EPOLLEXCLUSIVE.
    EXCLUSIVE = "exclusive"
    #: Like EXCLUSIVE but rotate the woken entry to the tail — the
    #: epoll-roundrobin proposal.
    EXCLUSIVE_ROUNDROBIN = "rr"


class WaitEntry:
    """One waiter registered on a :class:`WaitQueue`.

    ``func(entry, key) -> bool`` is the wake callback; the ``exclusive``
    flag corresponds to WQ_FLAG_EXCLUSIVE.  ``owner`` is opaque context
    (typically the epoll instance holding this entry).
    """

    __slots__ = ("func", "exclusive", "owner", "queue")

    def __init__(self, func: Callable[["WaitEntry", Any], bool],
                 exclusive: bool = False, owner: Any = None):
        self.func = func
        self.exclusive = exclusive
        self.owner = owner
        self.queue: Optional["WaitQueue"] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag = "exclusive" if self.exclusive else "shared"
        return f"<WaitEntry {flag} owner={self.owner!r}>"


class WaitQueue:
    """An ordered list of waiters with kernel wakeup semantics.

    ``insertion="head"`` is epoll's behaviour (LIFO preference);
    ``insertion="tail"`` models io_uring's FIFO wakeup order (§8 of the
    paper notes io_uring "uses a default interrupt mode with a fixed
    wakeup order (similar to epoll, but in FIFO order)").
    """

    def __init__(self, rotate_on_wake: bool = False,
                 insertion: str = "head"):
        if insertion not in ("head", "tail"):
            raise ValueError(f"insertion must be head or tail, got "
                             f"{insertion!r}")
        #: Head of the list is index 0; wakeups traverse in index order.
        self._entries: List[WaitEntry] = []
        #: Round-robin variant: move woken entry to the tail.
        self.rotate_on_wake = rotate_on_wake
        #: Where ``add`` places new entries.
        self.insertion = insertion
        #: Wakeup statistics, indexable by entry owner for experiments.
        self.wake_calls = 0
        #: Optional :class:`repro.obs.Tracer`; set by whoever wires the
        #: socket (None = untraced, zero overhead).
        self.tracer = None

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, entry: WaitEntry) -> bool:
        return entry in self._entries

    @property
    def entries(self) -> List[WaitEntry]:
        """Snapshot of entries in traversal (head-first) order."""
        return list(self._entries)

    def add(self, entry: WaitEntry) -> None:
        """Register a waiter at the configured insertion point.

        Head insertion (epoll) is what produces the LIFO wakeup preference
        of epoll exclusive: the last worker to call ``epoll_ctl`` is tried
        first.  Tail insertion (io_uring) yields FIFO order — a *fixed*
        order all the same, so still load-unaware.
        """
        if entry.queue is not None:
            raise ValueError("entry is already on a wait queue")
        entry.queue = self
        if self.insertion == "head":
            self._entries.insert(0, entry)
        else:
            self._entries.append(entry)

    def add_tail(self, entry: WaitEntry) -> None:
        """Register a waiter at the tail (used by some kernel paths)."""
        if entry.queue is not None:
            raise ValueError("entry is already on a wait queue")
        entry.queue = self
        self._entries.append(entry)

    def remove(self, entry: WaitEntry) -> None:
        """Unregister a waiter (``epoll_ctl(EPOLL_CTL_DEL)`` path)."""
        self._entries.remove(entry)
        entry.queue = None

    def wake(self, key: Any = None, nr_exclusive: int = 1) -> List[WaitEntry]:
        """Walk the queue and wake waiters; returns entries that woke.

        Faithful to ``__wake_up_common``: every entry's wake function runs
        in traversal order; when a function returns True and the entry is
        exclusive, ``nr_exclusive`` is decremented and traversal stops when
        it hits zero.  Entries whose function returns False (owner already
        awake) do not consume the exclusive budget — the kernel keeps
        walking to find a sleeping waiter.
        """
        self.wake_calls += 1
        tracer = self.tracer
        if tracer is not None:
            tracer.begin("wait.wake", "kernel", waiters=len(self._entries),
                         nr_exclusive=nr_exclusive)
        woken: List[WaitEntry] = []
        walked = 0
        remaining = nr_exclusive
        rotated: List[WaitEntry] = []
        for entry in list(self._entries):
            if entry.queue is not self:
                continue  # removed by an earlier callback
            walked += 1
            success = entry.func(entry, key)
            if success:
                woken.append(entry)
                if entry.exclusive:
                    if self.rotate_on_wake:
                        rotated.append(entry)
                    remaining -= 1
                    if remaining <= 0:
                        break
        for entry in rotated:
            if entry.queue is self:
                self._entries.remove(entry)
                self._entries.append(entry)
        if tracer is not None:
            tracer.end("wait.wake", "kernel", walked=walked,
                       woken=len(woken))
        return woken
