"""Real-process runtime: the natively-executable slice of Hermes.

- :mod:`repro.runtime.shm` — a genuine shared-memory Worker Status Table
  with seqlocked per-worker slots, usable across OS processes.
- :mod:`repro.runtime.echo` — real worker processes running the Fig.-9
  loop over real epoll and real TCP sockets, executing the same
  Algorithm-1 scheduler as the simulation.
- :mod:`repro.runtime.connector` — Algorithm-2 dispatch at the connection
  originator (the eBPF hook's stand-in; see DESIGN.md).
"""

from .connector import HashConnector, HermesConnector, RequestResult
from .echo import RealWorkerPool, worker_main
from .reuseport_probe import ReuseportProbeResult, probe_kernel_reuseport
from .shm import ShmSelectionMap, ShmWorkerStatusTable

__all__ = [
    "HashConnector",
    "HermesConnector",
    "RealWorkerPool",
    "RequestResult",
    "ReuseportProbeResult",
    "ShmSelectionMap",
    "ShmWorkerStatusTable",
    "probe_kernel_reuseport",
    "worker_main",
]
