"""Probe the real kernel's SO_REUSEPORT dispatch.

Binds N sockets to the *same* port with ``SO_REUSEPORT`` (a genuine
reuseport group, the structure Hermes's eBPF program overrides), runs one
acceptor process per socket, drives real connections at the port, and
reports how the kernel's hash spread them — the baseline behaviour of
§2.2, measured natively.

This validates the simulation's reuseport model against the actual kernel:
distribution should be roughly uniform across sockets, with per-run
variance (it's a hash, not round robin), and completely unaware of how
busy each acceptor is.
"""

from __future__ import annotations

import multiprocessing
import socket
import time
from dataclasses import dataclass
from typing import List

__all__ = ["ReuseportProbeResult", "probe_kernel_reuseport"]


@dataclass(frozen=True)
class ReuseportProbeResult:
    n_sockets: int
    n_connections: int
    #: Connections the kernel dispatched to each member socket.
    per_socket: List[int]
    #: max/mean ratio (1.0 == perfectly even).
    imbalance: float

    @property
    def all_sockets_used(self) -> bool:
        return all(c > 0 for c in self.per_socket)


def _acceptor(port: int, index: int, counts, stop_event,
              ready_event) -> None:
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
    sock.bind(("127.0.0.1", port))
    sock.listen(128)
    sock.settimeout(0.1)
    ready_event.set()
    try:
        while not stop_event.is_set():
            try:
                conn, _addr = sock.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            counts[index] += 1
            conn.close()
    finally:
        sock.close()


def probe_kernel_reuseport(n_sockets: int = 4,
                           n_connections: int = 200,
                           timeout: float = 15.0) -> ReuseportProbeResult:
    """Measure the real kernel's reuseport distribution on localhost."""
    if n_sockets < 2:
        raise ValueError("need at least two member sockets")
    ctx = multiprocessing.get_context("fork")
    counts = ctx.Array("i", n_sockets)
    stop = ctx.Event()

    # Reserve a port by binding the first member socket in-process first?
    # Simpler: grab a free port, then let every acceptor bind it with
    # SO_REUSEPORT.
    placeholder = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    placeholder.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
    placeholder.bind(("127.0.0.1", 0))
    port = placeholder.getsockname()[1]
    placeholder.close()

    processes = []
    ready_events = []
    for index in range(n_sockets):
        ready = ctx.Event()
        ready_events.append(ready)
        process = ctx.Process(target=_acceptor,
                              args=(port, index, counts, stop, ready),
                              daemon=True)
        process.start()
        processes.append(process)
    deadline = time.monotonic() + timeout
    try:
        for ready in ready_events:
            if not ready.wait(max(0.0, deadline - time.monotonic())):
                raise RuntimeError("acceptor failed to start")
        # Drive real connections; each new ephemeral source port gives the
        # kernel a fresh 4-tuple to hash.
        for _ in range(n_connections):
            try:
                conn = socket.create_connection(("127.0.0.1", port),
                                                timeout=2.0)
                conn.close()
            except OSError:
                pass
        # Let acceptors drain their backlogs.
        target = n_connections
        while sum(counts) < target and time.monotonic() < deadline:
            time.sleep(0.05)
    finally:
        stop.set()
        for process in processes:
            process.join(2.0)
            if process.is_alive():  # pragma: no cover - safety net
                process.terminate()

    per_socket = list(counts)
    total = sum(per_socket)
    mean = total / n_sockets if n_sockets else 0
    imbalance = max(per_socket) / mean if mean else 0.0
    return ReuseportProbeResult(
        n_sockets=n_sockets,
        n_connections=total,
        per_socket=per_socket,
        imbalance=imbalance,
    )


if __name__ == "__main__":  # pragma: no cover - manual harness
    result = probe_kernel_reuseport()
    print(f"kernel reuseport dispatch over {result.n_sockets} sockets: "
          f"{result.per_socket} (imbalance {result.imbalance:.2f}x)")
