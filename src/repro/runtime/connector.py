"""Connection-originator dispatch over the real worker pool.

The Algorithm-2 logic at the connection source: read the shared 64-bit
bitmap the real workers' schedulers maintain, popcount it, scale a flow
hash into the candidate count, locate the Nth set bit, connect to that
worker's port.  :class:`HashConnector` is the stateless-reuseport
baseline (hash over *all* workers, no status awareness).
"""

from __future__ import annotations

import socket
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..core.bitmap import find_nth_set_bit, popcount64
from ..kernel.hash import reciprocal_scale
from ..sim.rng import Stream
from .shm import ShmSelectionMap

__all__ = ["HermesConnector", "HashConnector", "RequestResult"]


@dataclass(frozen=True)
class RequestResult:
    worker_index: int
    latency: float
    ok: bool


@dataclass
class _BaseConnector:
    ports: Sequence[int]
    rng: Stream
    timeout: float = 2.0
    results: List[RequestResult] = field(default_factory=list)

    def _pick(self) -> int:
        raise NotImplementedError

    def request(self, payload: bytes = b"ping") -> RequestResult:
        """One connection, one request, one echo — measured end to end."""
        index = self._pick()
        start = time.monotonic()
        ok = True
        try:
            with socket.create_connection(
                    ("127.0.0.1", self.ports[index]),
                    timeout=self.timeout) as conn:
                conn.sendall(payload)
                received = b""
                expected = b"echo:" + payload
                while len(received) < len(expected):
                    chunk = conn.recv(4096)
                    if not chunk:
                        break
                    received += chunk
                ok = received == expected
        except OSError:
            ok = False
        result = RequestResult(worker_index=index,
                               latency=time.monotonic() - start, ok=ok)
        self.results.append(result)
        return result

    # -- aggregates ---------------------------------------------------------
    def latencies(self) -> List[float]:
        return [r.latency for r in self.results if r.ok]

    def per_worker_counts(self) -> List[int]:
        counts = [0] * len(self.ports)
        for r in self.results:
            counts[r.worker_index] += 1
        return counts

    def failures(self) -> int:
        return sum(1 for r in self.results if not r.ok)


@dataclass
class HashConnector(_BaseConnector):
    """Stateless dispatch: hash (here: uniform random) over all workers."""

    def _pick(self) -> int:
        return reciprocal_scale(self.rng.getrandbits(32), len(self.ports))


@dataclass
class HermesConnector(_BaseConnector):
    """Userspace-directed dispatch: Algorithm 2 over the live bitmap."""

    sel_map: Optional[ShmSelectionMap] = None
    min_workers: int = 1
    fallbacks: int = 0

    def _pick(self) -> int:
        flow_hash = self.rng.getrandbits(32)
        bitmap = self.sel_map.read_from_user(0) if self.sel_map else 0
        n = popcount64(bitmap)
        if n < self.min_workers:
            self.fallbacks += 1
            return reciprocal_scale(flow_hash, len(self.ports))
        nth = reciprocal_scale(flow_hash, n)
        worker = find_nth_set_bit(bitmap, nth)
        if worker >= len(self.ports):  # stale bitmap bit
            self.fallbacks += 1
            return reciprocal_scale(flow_hash, len(self.ports))
        return worker
