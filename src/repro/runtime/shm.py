"""A *real* shared-memory Worker Status Table.

The simulation models the WST's concurrency semantics; this module
implements them for real, across actual OS processes, over
``multiprocessing.shared_memory`` — the slice of Hermes that pure Python
can execute natively.

CPython offers no cross-process ``atomic<int>``, so each slot is guarded
by a **seqlock** (the kernel's reader/writer pattern for exactly this
situation): the writer increments a version counter to an odd value,
writes the fields, then increments it to the next even value; a reader
snapshots the version, reads the fields, re-reads the version, and retries
if it changed or was odd.  This preserves the paper's two properties:

- writers never block (each worker owns its slot exclusively — no write
  contention by construction, §5.3.1), and
- readers never block writers, yet never observe a torn value.

Slots are padded to 64 bytes so two workers' counters never share a cache
line (false sharing would serialize the "lock-free" updates in practice).

The same layout backs :class:`ShmSelectionMap` — the stand-in for the
eBPF array map carrying the selected-worker bitmap.
"""

from __future__ import annotations

import struct
from multiprocessing import shared_memory
from typing import List, Optional, Tuple

from ..core.wst import WstSnapshot

__all__ = ["ShmWorkerStatusTable", "ShmSelectionMap", "SLOT_SIZE"]

#: One cache line per worker slot.
SLOT_SIZE = 64
#: seq(u64) | timestamp(f64) | events(i64) | conns(i64) then padding.
_SLOT_FMT = "<Qdqq"
_SLOT_USED = struct.calcsize(_SLOT_FMT)
#: Bound on seqlock read attempts before declaring livelock.  A writer
#: preempted mid-update holds the sequence odd for a whole scheduling
#: quantum, so readers back off with short sleeps (see ``_SPIN_BEFORE_
#: SLEEP``) and only fail after a generous real-time budget — a stuck odd
#: sequence beyond that means the writer died mid-update.
MAX_RETRIES = 5000
#: Spin this many times before each backoff sleep.
_SPIN_BEFORE_SLEEP = 50
_BACKOFF_SLEEP = 0.0002


class ShmWorkerStatusTable:
    """WST over real shared memory; one seqlocked slot per worker.

    Mirrors the simulation WST's interface (``touch_timestamp`` /
    ``add_events`` / ``add_conns`` / ``read_all``), so the *same*
    :class:`~repro.core.scheduler.CascadingScheduler` code runs over it.
    """

    def __init__(self, n_workers: int, clock=None,
                 name: Optional[str] = None, create: bool = True):
        if n_workers < 1:
            raise ValueError("need at least one worker")
        self.n_workers = n_workers
        self._clock = clock or _monotonic
        size = SLOT_SIZE * n_workers
        if create:
            self._shm = shared_memory.SharedMemory(
                create=True, size=size, name=name)
            self._shm.buf[:size] = bytes(size)
        else:
            if name is None:
                raise ValueError("attaching requires a name")
            self._shm = shared_memory.SharedMemory(name=name)
            if self._shm.size < size:
                raise ValueError(
                    f"segment too small: {self._shm.size} < {size}")
        self._owns = create
        #: Local (per-process) operation counters.
        self.update_ops = 0
        self.read_ops = 0
        self.read_retries = 0

    @property
    def name(self) -> str:
        """The segment name other processes attach with."""
        return self._shm.name

    @classmethod
    def attach(cls, name: str, n_workers: int,
               clock=None) -> "ShmWorkerStatusTable":
        """Attach to an existing table from another process."""
        return cls(n_workers, clock=clock, name=name, create=False)

    # -- slot access --------------------------------------------------------
    def _offset(self, worker_id: int) -> int:
        if not 0 <= worker_id < self.n_workers:
            raise IndexError(f"worker id {worker_id} out of range")
        return worker_id * SLOT_SIZE

    def _read_slot_raw(self, offset: int) -> Tuple[int, float, int, int]:
        return struct.unpack_from(_SLOT_FMT, self._shm.buf, offset)

    def _write_slot(self, worker_id: int, timestamp: float,
                    events: int, conns: int) -> None:
        """Seqlock write: odd seq while the fields are in flux."""
        offset = self._offset(worker_id)
        seq = struct.unpack_from("<Q", self._shm.buf, offset)[0]
        struct.pack_into("<Q", self._shm.buf, offset, seq + 1)  # odd
        struct.pack_into("<dqq", self._shm.buf, offset + 8,
                         timestamp, events, conns)
        struct.pack_into("<Q", self._shm.buf, offset, seq + 2)  # even
        self.update_ops += 1

    def read_slot(self, worker_id: int) -> Tuple[float, int, int]:
        """Seqlock read with retry + backoff: never returns a torn slot."""
        import time as _time
        offset = self._offset(worker_id)
        for attempt in range(MAX_RETRIES):
            seq0, timestamp, events, conns = self._read_slot_raw(offset)
            if seq0 % 2 == 0:
                seq1 = struct.unpack_from("<Q", self._shm.buf, offset)[0]
                if seq0 == seq1:
                    return timestamp, events, conns
            self.read_retries += 1
            if attempt % _SPIN_BEFORE_SLEEP == _SPIN_BEFORE_SLEEP - 1:
                # The writer may be preempted mid-update; yield the CPU so
                # it can finish instead of spinning against it.
                _time.sleep(_BACKOFF_SLEEP)
        raise RuntimeError(
            f"seqlock livelock on worker {worker_id} slot — "
            f"writer died mid-update?")

    # -- the simulation-WST interface ----------------------------------------
    def touch_timestamp(self, worker_id: int) -> None:
        _, events, conns = self.read_slot(worker_id)
        self._write_slot(worker_id, self._clock(), events, conns)

    def add_events(self, worker_id: int, delta: int) -> None:
        timestamp, events, conns = self.read_slot(worker_id)
        self._write_slot(worker_id, timestamp,
                         max(0, events + delta), conns)

    def add_conns(self, worker_id: int, delta: int) -> None:
        timestamp, events, conns = self.read_slot(worker_id)
        self._write_slot(worker_id, timestamp, events,
                         max(0, conns + delta))

    def set_slot(self, worker_id: int, timestamp: float,
                 events: int, conns: int) -> None:
        """Publish a full status atomically (one seqlock section)."""
        self._write_slot(worker_id, timestamp, events, conns)

    def read_all(self) -> WstSnapshot:
        self.read_ops += 1
        times: List[float] = []
        events: List[int] = []
        conns: List[int] = []
        for worker_id in range(self.n_workers):
            t, e, c = self.read_slot(worker_id)
            times.append(t)
            events.append(e)
            conns.append(c)
        return WstSnapshot(times=tuple(times), events=tuple(events),
                           conns=tuple(conns))

    # -- lifecycle ------------------------------------------------------------
    def close(self) -> None:
        self._shm.close()

    def unlink(self) -> None:
        """Destroy the segment (creator only)."""
        if self._owns:
            self._shm.unlink()

    def __enter__(self) -> "ShmWorkerStatusTable":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
        if self._owns:
            try:
                self.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass


class ShmSelectionMap:
    """The eBPF selection map's stand-in: 64-bit words in shared memory.

    Interface-compatible with :class:`~repro.core.ebpf.BpfArrayMap` for
    the operations the scheduler and dispatch program use.

    Unlike WST slots, a selection word has *many* writers (every worker's
    scheduler), so a seqlock would corrupt (two writers racing the
    sequence leave it odd).  The paper's answer is an ``atomic<int>``
    store; the closest Python equivalent is a single aligned 8-byte slice
    assignment — one ``memcpy`` of a word, which is effectively atomic on
    the 64-bit platforms this runs on (each slot sits at a 64-byte
    boundary).  A torn word would anyway only mis-steer a few connections
    for one update interval, the same argument as §5.3.1.
    """

    def __init__(self, max_entries: int = 1, name: Optional[str] = None,
                 create: bool = True):
        if max_entries < 1:
            raise ValueError("need at least one entry")
        self.max_entries = max_entries
        size = SLOT_SIZE * max_entries
        if create:
            self._shm = shared_memory.SharedMemory(
                create=True, size=size, name=name)
            self._shm.buf[:size] = bytes(size)
        else:
            if name is None:
                raise ValueError("attaching requires a name")
            self._shm = shared_memory.SharedMemory(name=name)
        self._owns = create
        self.user_updates = 0
        self.kernel_lookups = 0

    @property
    def name(self) -> str:
        return self._shm.name

    @classmethod
    def attach(cls, name: str, max_entries: int = 1) -> "ShmSelectionMap":
        return cls(max_entries, name=name, create=False)

    def _offset(self, key: int) -> int:
        if not 0 <= key < self.max_entries:
            raise IndexError(f"key {key} out of range")
        return key * SLOT_SIZE

    def update_from_user(self, key: int, value: int) -> None:
        offset = self._offset(key)
        # One aligned 8-byte store — the atomic<int> emulation.
        self._shm.buf[offset:offset + 8] = struct.pack(
            "<Q", value & (2 ** 64 - 1))
        self.user_updates += 1

    def _read(self, key: int) -> int:
        offset = self._offset(key)
        return struct.unpack_from("<Q", self._shm.buf, offset)[0]

    def lookup(self, key: int) -> int:
        self.kernel_lookups += 1
        return self._read(key)

    def read_from_user(self, key: int) -> int:
        return self._read(key)

    def close(self) -> None:
        self._shm.close()

    def unlink(self) -> None:
        if self._owns:
            self._shm.unlink()


def _monotonic() -> float:
    import time
    return time.monotonic()
