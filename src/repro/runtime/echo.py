"""A real multi-process echo LB running the Hermes loop natively.

Worker processes are genuine OS processes; each runs the Fig.-9 event loop
over a real epoll (``selectors.DefaultSelector`` is epoll on Linux),
serves a real TCP socket, and executes the *same*
:class:`~repro.core.scheduler.CascadingScheduler` code the simulation
uses — over the real shared-memory WST of :mod:`repro.runtime.shm`.

One substitution (documented in DESIGN.md): Python cannot attach an eBPF
program to a reuseport group, so the Algorithm-2 dispatch point moves from
the kernel to the connection originator — each worker listens on its own
port, and :mod:`repro.runtime.connector` picks the destination port with
the same popcount/reciprocal_scale/find-nth-bit logic over the shared
bitmap.  (In production this steering position exists too: the L4 layer
rewrites destination ports per tenant, Fig. 1.)
"""

from __future__ import annotations

import multiprocessing
import selectors
import socket
import time
from dataclasses import dataclass
from typing import List, Optional

from ..core.config import HermesConfig
from ..core.scheduler import CascadingScheduler
from .shm import ShmSelectionMap, ShmWorkerStatusTable

__all__ = ["RealWorkerPool", "worker_main"]

_BACKLOG = 128
_RECV_SIZE = 4096


def worker_main(worker_id: int, port: int, wst_name: str,
                sel_map_name: str, n_workers: int,
                stop_event, ready_event,
                slow_per_request: float = 0.0,
                config: Optional[HermesConfig] = None) -> None:
    """Entry point of one real worker process."""
    config = config or HermesConfig(epoll_timeout=0.005, min_workers=1)
    wst = ShmWorkerStatusTable.attach(wst_name, n_workers,
                                      clock=time.monotonic)
    sel_map = ShmSelectionMap.attach(sel_map_name)
    scheduler = CascadingScheduler(wst, sel_map, config=config,
                                   clock=time.monotonic)

    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
    listener.bind(("127.0.0.1", port))
    listener.listen(_BACKLOG)
    listener.setblocking(False)

    selector = selectors.DefaultSelector()  # epoll on Linux
    selector.register(listener, selectors.EVENT_READ, "accept")
    conn_count = 0
    ready_event.set()

    try:
        while not stop_event.is_set():
            # Fig. 9 line 12: shm_avail_update(current_time).
            wst.touch_timestamp(worker_id)
            events = selector.select(timeout=config.epoll_timeout)
            if events:
                # shm_busy_count(event_num).
                wst.add_events(worker_id, len(events))
            for key, _mask in events:
                if key.data == "accept":
                    try:
                        conn, _addr = listener.accept()
                    except BlockingIOError:
                        pass
                    else:
                        conn.setblocking(False)
                        selector.register(conn, selectors.EVENT_READ,
                                          "conn")
                        conn_count += 1
                        wst.add_conns(worker_id, +1)
                else:
                    conn = key.fileobj
                    try:
                        data = conn.recv(_RECV_SIZE)
                    except (BlockingIOError, InterruptedError):
                        data = None
                    except (ConnectionResetError, OSError):
                        data = b""
                    if data is None:
                        pass
                    elif data:
                        if slow_per_request > 0:
                            # The worker-hang injection: a CPU-expensive
                            # handler (SSL, compression) per request.
                            time.sleep(slow_per_request)
                        try:
                            conn.sendall(b"echo:" + data)
                        except OSError:
                            pass
                    else:
                        selector.unregister(conn)
                        conn.close()
                        conn_count -= 1
                        wst.add_conns(worker_id, -1)
                wst.add_events(worker_id, -1)
            # Fig. 9 line 20: schedule_and_sync() at loop end.
            scheduler.schedule_and_sync()
    finally:
        selector.close()
        listener.close()
        wst.close()
        sel_map.close()


@dataclass
class _WorkerHandle:
    worker_id: int
    port: int
    process: multiprocessing.Process


class RealWorkerPool:
    """Spawns and supervises the real worker processes."""

    def __init__(self, n_workers: int, base_port: int = 0,
                 slow_workers: Optional[dict] = None,
                 config: Optional[HermesConfig] = None):
        if n_workers < 1 or n_workers > 64:
            raise ValueError("n_workers must be in [1, 64]")
        self.n_workers = n_workers
        self.config = config
        self.slow_workers = slow_workers or {}
        self.wst = ShmWorkerStatusTable(n_workers, clock=time.monotonic)
        self.sel_map = ShmSelectionMap()
        self._ctx = multiprocessing.get_context("fork")
        self._stop = self._ctx.Event()
        self.workers: List[_WorkerHandle] = []
        self.ports: List[int] = []
        self._base_port = base_port

    def _pick_ports(self) -> List[int]:
        """Grab free localhost ports (one per worker)."""
        if self._base_port:
            return [self._base_port + i for i in range(self.n_workers)]
        ports, holders = [], []
        for _ in range(self.n_workers):
            s = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            s.bind(("127.0.0.1", 0))
            ports.append(s.getsockname()[1])
            holders.append(s)
        for s in holders:
            s.close()
        return ports

    def start(self, timeout: float = 5.0) -> None:
        self.ports = self._pick_ports()
        ready_events = []
        for worker_id, port in enumerate(self.ports):
            ready = self._ctx.Event()
            ready_events.append(ready)
            process = self._ctx.Process(
                target=worker_main,
                args=(worker_id, port, self.wst.name, self.sel_map.name,
                      self.n_workers, self._stop, ready),
                kwargs={"slow_per_request":
                        self.slow_workers.get(worker_id, 0.0),
                        "config": self.config},
                daemon=True)
            process.start()
            self.workers.append(_WorkerHandle(worker_id, port, process))
        deadline = time.monotonic() + timeout
        for ready in ready_events:
            if not ready.wait(max(0.0, deadline - time.monotonic())):
                self.stop()
                raise RuntimeError("worker failed to start in time")

    def current_bitmap(self) -> int:
        return self.sel_map.read_from_user(0)

    def snapshot(self):
        return self.wst.read_all()

    def stop(self, timeout: float = 3.0) -> None:
        self._stop.set()
        for handle in self.workers:
            handle.process.join(timeout)
            if handle.process.is_alive():  # pragma: no cover - safety net
                handle.process.terminate()
                handle.process.join(1.0)
        self.workers.clear()
        self.wst.close()
        self.wst.unlink()
        self.sel_map.close()
        self.sel_map.unlink()

    def __enter__(self) -> "RealWorkerPool":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
