"""Tenant traffic skew models.

§7: "tenant traffic is heavily skewed.  A small number of top tenants
contribute the majority of traffic (e.g., the top three tenants account for
40%, 28%, and 22% of the overall traffic in one of our regions...)".

Helpers here produce weighted tenant/port populations: either the paper's
measured top-heavy shares or parametric Zipf weights.
"""

from __future__ import annotations

from typing import List, Sequence

__all__ = ["zipf_weights", "top_heavy_weights", "PAPER_TOP3_REGION_A",
           "PAPER_TOP3_REGION_B"]

#: The two measured regions' top-3 tenant shares (rest uniform).
PAPER_TOP3_REGION_A = (0.40, 0.28, 0.22)
PAPER_TOP3_REGION_B = (0.23, 0.10, 0.04)


def zipf_weights(n: int, alpha: float = 1.0) -> List[float]:
    """Zipf(alpha) weights over ``n`` tenants, normalized to sum 1."""
    if n < 1:
        raise ValueError("need at least one tenant")
    if alpha < 0:
        raise ValueError("alpha must be >= 0")
    raw = [1.0 / (rank ** alpha) for rank in range(1, n + 1)]
    total = sum(raw)
    return [w / total for w in raw]


def top_heavy_weights(n: int,
                      top_shares: Sequence[float] = PAPER_TOP3_REGION_A,
                      ) -> List[float]:
    """Weights where the first tenants take fixed shares, rest uniform."""
    if n < 1:
        raise ValueError("need at least one tenant")
    shares = list(top_shares)[:n]
    if sum(shares) > 1.0 + 1e-9:
        raise ValueError("top shares must sum to <= 1")
    remainder = max(0.0, 1.0 - sum(shares))
    n_rest = n - len(shares)
    if n_rest == 0:
        total = sum(shares)
        return [s / total for s in shares]
    return shares + [remainder / n_rest] * n_rest
