"""Workload generation: arrival processes, request distributions, the
paper's four traffic cases, region profiles, traces, and tenant skew."""

from .arrivals import BurstTrain, PiecewiseRate, PoissonArrivals
from .cases import (
    CASE_MIX,
    CASES,
    LOAD_MULTIPLIERS,
    CaseDefinition,
    build_case_workload,
)
from .distributions import FixedFactory, QuantileSampler, RequestFactory
from .generator import ClientStats, TrafficGenerator, WorkloadSpec
from .library import (
    FAMILIES,
    WorkloadFamily,
    build_family_trace,
    family_names,
)
from .regions import REGIONS, RegionProfile
from .skew import (
    PAPER_TOP3_REGION_A,
    PAPER_TOP3_REGION_B,
    top_heavy_weights,
    zipf_weights,
)
from .trace import Trace, TraceEvent, TraceReplayer, build_trace_from_spec

__all__ = [
    "BurstTrain",
    "CASE_MIX",
    "CASES",
    "CaseDefinition",
    "ClientStats",
    "FAMILIES",
    "FixedFactory",
    "LOAD_MULTIPLIERS",
    "PAPER_TOP3_REGION_A",
    "PAPER_TOP3_REGION_B",
    "PiecewiseRate",
    "PoissonArrivals",
    "QuantileSampler",
    "REGIONS",
    "RegionProfile",
    "RequestFactory",
    "Trace",
    "TraceEvent",
    "TraceReplayer",
    "TrafficGenerator",
    "WorkloadFamily",
    "WorkloadSpec",
    "build_case_workload",
    "build_family_trace",
    "build_trace_from_spec",
    "family_names",
    "top_heavy_weights",
    "zipf_weights",
]
