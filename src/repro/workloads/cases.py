"""The paper's four traffic cases (Table 3) and their region mix (Table 4).

Each case is an operating point in the (CPS, average processing time) plane:

- **Case 1** — high CPS, low processing time: stress tests / traffic spikes.
- **Case 2** — high CPS, high processing time: spikes of expensive work
  (e.g. compression).
- **Case 3** — low CPS, low processing time: finance/chat long-lived
  connections, many small requests per connection.
- **Case 4** — low CPS, high processing time: web services with SSL
  handshakes and regex routing.

Rates are expressed as a fraction of device capacity (``n_workers /
mean_service``) so the same case definitions scale from unit-test-sized
devices to the benchmark's 32 workers.  The paper replays each case at 1×,
2×, and 3× for light/medium/heavy — we do the same via ``load``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from .distributions import QuantileSampler, RequestFactory
from .generator import WorkloadSpec

__all__ = ["CaseDefinition", "CASES", "LOAD_MULTIPLIERS", "CASE_MIX",
           "build_case_workload"]

#: Light/medium/heavy replay multipliers (§6.2: "2 to 3 times the original").
LOAD_MULTIPLIERS: Dict[str, float] = {"light": 1.0, "medium": 2.0, "heavy": 3.0}


@dataclass(frozen=True)
class CaseDefinition:
    """One of the four traffic models."""

    name: str
    description: str
    #: Userspace processing-time quantiles per *request* (seconds).
    service_knots: Tuple[Tuple[float, float], ...]
    #: Upper bound of the service-time tail (value at quantile 1.0).
    #: A cap far above P99 produces the rare monster requests that hang a
    #: worker — the Case 2 pathology.
    service_cap: Optional[float]
    #: Documentation-only rough mean; rate calibration uses the exact
    #: sampler mean (see :meth:`exact_mean_service`).
    mean_service: float
    #: Request size quantiles (bytes).
    size_knots: Tuple[Tuple[float, float], ...]
    #: Requests sent on each connection.
    requests_per_conn: int
    #: Mean gap between requests on one connection.
    request_gap_mean: float
    #: Events per request.
    min_events: int
    max_events: int
    #: Base *request* load as a fraction of device capacity at light load.
    base_load_fraction: float
    #: Distinct client IPs (small ⇒ heavy hitters ⇒ hash collisions).
    n_client_ips: int = 65536

    def service_sampler(self) -> QuantileSampler:
        return QuantileSampler(list(self.service_knots),
                               cap=self.service_cap)

    def exact_mean_service(self) -> float:
        """The sampler's true mean — what capacity calibration must use
        (the hang tail dominates the integral in Case 2)."""
        return self.service_sampler().mean()

    def request_rate(self, n_workers: int, load: str) -> float:
        """Target requests/second for a device of ``n_workers`` cores."""
        capacity = n_workers / self.exact_mean_service()
        return capacity * self.base_load_fraction * LOAD_MULTIPLIERS[load]

    def conn_rate(self, n_workers: int, load: str) -> float:
        """Connections/second implied by the request rate."""
        return self.request_rate(n_workers, load) / self.requests_per_conn


_MS = 1e-3

CASES: Dict[str, CaseDefinition] = {
    "case1": CaseDefinition(
        name="case1",
        description="High CPS, low avg processing time",
        service_knots=((0.5, 0.25 * _MS), (0.9, 0.6 * _MS), (0.99, 1.5 * _MS)),
        service_cap=3 * _MS,
        mean_service=0.40 * _MS,
        size_knots=((0.5, 250), (0.9, 320), (0.99, 2500)),
        requests_per_conn=1,
        request_gap_mean=0.0,
        min_events=1, max_events=2,
        # Light 0.4 → heavy 1.2: the 3× replay pushes past capacity, where
        # exclusive's LIFO concentration and O(#ports) dispatch cost bite.
        base_load_fraction=0.40,
    ),
    "case2": CaseDefinition(
        name="case2",
        description="High CPS, high avg processing time",
        # Mostly sub-ms requests with a monster tail (compression jobs):
        # ~1% run 40 ms .. 1.2 s and hang the worker that takes them.
        service_knots=((0.5, 0.5 * _MS), (0.9, 3 * _MS), (0.99, 40 * _MS)),
        service_cap=1.2,
        mean_service=2.6 * _MS,
        size_knots=((0.5, 830), (0.9, 3700), (0.99, 10000)),
        # Persistent stress-test connections: requests keep arriving on the
        # connections a worker has accumulated, so concentration (exclusive)
        # or blind hashing onto a busy worker (reuseport) stalls them all.
        requests_per_conn=8,
        request_gap_mean=0.080,
        min_events=1, max_events=3,
        base_load_fraction=0.22,
        # Concentrated client population: the heavy hitters whose hash
        # collisions hurt stateless reuseport.
        n_client_ips=64,
    ),
    "case3": CaseDefinition(
        name="case3",
        description="Low CPS, low processing, long-lived connections",
        service_knots=((0.5, 0.2 * _MS), (0.9, 0.5 * _MS), (0.99, 1.5 * _MS)),
        service_cap=4 * _MS,
        mean_service=0.32 * _MS,
        size_knots=((0.5, 560), (0.9, 1900), (0.99, 5000)),
        requests_per_conn=40,
        request_gap_mean=0.050,
        min_events=1, max_events=2,
        base_load_fraction=0.25,
    ),
    "case4": CaseDefinition(
        name="case4",
        description="Low CPS, high avg processing time (SSL/regex web)",
        service_knots=((0.5, 15 * _MS), (0.9, 50 * _MS), (0.99, 200 * _MS)),
        service_cap=0.5,
        mean_service=28 * _MS,
        size_knots=((0.5, 720), (0.9, 1100), (0.99, 4600)),
        requests_per_conn=3,
        request_gap_mean=0.020,
        min_events=2, max_events=4,
        base_load_fraction=0.32,
        n_client_ips=256,
    ),
}

#: Table 4 — share of each case per region (percent).
CASE_MIX: Dict[str, Dict[str, float]] = {
    "Region1": {"case1": 19.45, "case2": 0.55, "case3": 65.61, "case4": 14.39},
    "Region2": {"case1": 0.77, "case2": 7.83, "case3": 9.27, "case4": 82.13},
    "Region3": {"case1": 6.6, "case2": 2.9, "case3": 60.8, "case4": 29.7},
    "Region4": {"case1": 2.81, "case2": 7.41, "case3": 89.07, "case4": 0.71},
}


def build_case_workload(case: str, load: str, n_workers: int,
                        duration: float, ports=(443,),
                        tenant_weights=None) -> WorkloadSpec:
    """A ready-to-run :class:`WorkloadSpec` for one (case, load) cell."""
    definition = CASES[case]
    if load not in LOAD_MULTIPLIERS:
        raise ValueError(f"load must be one of {sorted(LOAD_MULTIPLIERS)}")
    factory = RequestFactory(
        service_sampler=definition.service_sampler(),
        size_sampler=QuantileSampler(list(definition.size_knots)),
        min_events=definition.min_events,
        max_events=definition.max_events,
        handler=definition.name,
    )
    return WorkloadSpec(
        name=f"{case}-{load}",
        conn_rate=definition.conn_rate(n_workers, load),
        duration=duration,
        factory=factory,
        ports=tuple(ports),
        tenant_weights=tenant_weights,
        requests_per_conn=definition.requests_per_conn,
        request_gap_mean=definition.request_gap_mean,
        n_client_ips=definition.n_client_ips,
    )
