"""Region traffic profiles fitted to Table 1.

Table 1 reports request-size and processing-time quantiles for four global
regions.  Region3 carries many WebSocket connections — single "requests"
with enormous sizes and processing times in the far tail, which is why its
P99 dwarfs its P50/P90.

Each profile exposes quantile samplers fitted to the published knots, and
the Table 4 case mix for that region, so region-realistic workloads can be
composed from the four case definitions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from .cases import CASE_MIX
from .distributions import QuantileSampler

__all__ = ["RegionProfile", "REGIONS"]

_MS = 1e-3


@dataclass(frozen=True)
class RegionProfile:
    """One region's measured traffic characteristics (Table 1)."""

    name: str
    #: (P50, P90, P99) request size in bytes.
    size_quantiles: Tuple[float, float, float]
    #: (P50, P90, P99) request processing time in seconds.
    time_quantiles: Tuple[float, float, float]
    #: Share of each traffic case (Table 4), percent.
    case_mix: Dict[str, float]

    def size_sampler(self) -> QuantileSampler:
        p50, p90, p99 = self.size_quantiles
        return QuantileSampler([(0.5, p50), (0.9, p90), (0.99, p99)],
                               floor=64)

    def time_sampler(self) -> QuantileSampler:
        p50, p90, p99 = self.time_quantiles
        return QuantileSampler([(0.5, p50), (0.9, p90), (0.99, p99)])

    def dominant_case(self) -> str:
        return max(self.case_mix, key=self.case_mix.get)


REGIONS: Dict[str, RegionProfile] = {
    "Region1": RegionProfile(
        name="Region1",
        size_quantiles=(243, 312, 2491),
        time_quantiles=(2 * _MS, 9 * _MS, 42 * _MS),
        case_mix=CASE_MIX["Region1"],
    ),
    "Region2": RegionProfile(
        name="Region2",
        size_quantiles=(831, 3730, 10132),
        time_quantiles=(10 * _MS, 77 * _MS, 8190 * _MS),
        case_mix=CASE_MIX["Region2"],
    ),
    "Region3": RegionProfile(
        name="Region3",
        size_quantiles=(566, 1951, 50879),
        time_quantiles=(3 * _MS, 278 * _MS, 49005 * _MS),
        case_mix=CASE_MIX["Region3"],
    ),
    "Region4": RegionProfile(
        name="Region4",
        size_quantiles=(721, 1140, 4638),
        time_quantiles=(4 * _MS, 14 * _MS, 239 * _MS),
        case_mix=CASE_MIX["Region4"],
    ),
}
