"""Request-shape distributions.

The paper characterizes traffic by request size and *userspace processing
time* quantiles (Table 1).  We sample processing times from a
:class:`QuantileSampler` — log-linear inverse-CDF interpolation through the
published quantile knots — so a fitted workload reproduces P50/P90/P99
nearly exactly, including the WebSocket-heavy tails of Region3.

A :class:`RequestFactory` turns sampled totals into concrete
:class:`~repro.kernel.tcp.Request` objects: the total service time is split
across a sampled number of events (header read, body read, response write,
…), tagged with a handler class for workload realism.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..kernel.tcp import Request
from ..sim.rng import Stream

__all__ = ["QuantileSampler", "RequestFactory", "FixedFactory"]


class QuantileSampler:
    """Inverse-CDF sampler through quantile knots, log-linear between them.

    ``knots`` is a sequence of (quantile, value) pairs with quantiles in
    (0, 1), strictly increasing in both coordinates.  Below the first knot
    the distribution extends log-linearly down to ``floor`` at quantile 0;
    above the last knot it extends to ``cap`` at quantile 1 (defaults:
    first value / 4 and last value × 1.5).
    """

    def __init__(self, knots: Sequence[Tuple[float, float]],
                 floor: Optional[float] = None,
                 cap: Optional[float] = None):
        if not knots:
            raise ValueError("need at least one quantile knot")
        qs = [q for q, _ in knots]
        vs = [v for _, v in knots]
        if any(not 0 < q < 1 for q in qs):
            raise ValueError("knot quantiles must lie in (0, 1)")
        if sorted(qs) != qs or len(set(qs)) != len(qs):
            raise ValueError("knot quantiles must be strictly increasing")
        if any(v <= 0 for v in vs):
            raise ValueError("knot values must be positive")
        if sorted(vs) != vs:
            raise ValueError("knot values must be non-decreasing")
        lo = floor if floor is not None else vs[0] / 4
        hi = cap if cap is not None else vs[-1] * 1.5
        if lo <= 0:
            raise ValueError("floor must be positive")
        self._qs: List[float] = [0.0] + qs + [1.0]
        self._log_vs: List[float] = (
            [math.log(lo)] + [math.log(v) for v in vs] + [math.log(hi)])

    def quantile(self, q: float) -> float:
        """The value at cumulative probability ``q``."""
        if not 0 <= q <= 1:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        qs, lvs = self._qs, self._log_vs
        for i in range(len(qs) - 1):
            if qs[i] <= q <= qs[i + 1]:
                span = qs[i + 1] - qs[i]
                frac = 0.0 if span == 0 else (q - qs[i]) / span
                return math.exp(lvs[i] + frac * (lvs[i + 1] - lvs[i]))
        return math.exp(lvs[-1])  # pragma: no cover - q == 1 handled above

    def sample(self, rng: Stream) -> float:
        return self.quantile(rng.random())

    def mean(self) -> float:
        """Exact distribution mean.

        Between knots the quantile function is ``exp`` of a linear ramp, so
        each segment contributes ``(v1 - v0) / ln(v1 / v0)`` weighted by its
        quantile span (limit: ``v`` when ``v0 == v1``).
        """
        total = 0.0
        qs, lvs = self._qs, self._log_vs
        for i in range(len(qs) - 1):
            span = qs[i + 1] - qs[i]
            if span <= 0:
                continue
            v0, v1 = math.exp(lvs[i]), math.exp(lvs[i + 1])
            if abs(lvs[i + 1] - lvs[i]) < 1e-12:
                segment_mean = v0
            else:
                segment_mean = (v1 - v0) / (lvs[i + 1] - lvs[i])
            total += segment_mean * span
        return total


@dataclass
class RequestFactory:
    """Builds requests whose totals follow a quantile-fitted distribution."""

    service_sampler: QuantileSampler
    size_sampler: Optional[QuantileSampler] = None
    #: Events per request are uniform in [min_events, max_events].
    min_events: int = 1
    max_events: int = 3
    handler: str = "http"

    def __post_init__(self):
        if not 1 <= self.min_events <= self.max_events:
            raise ValueError("need 1 <= min_events <= max_events")

    def build(self, rng: Stream, tenant_id: int = 0) -> Request:
        total = self.service_sampler.sample(rng)
        n_events = rng.randint(self.min_events, self.max_events)
        event_times = _split_total(total, n_events, rng)
        size = (int(self.size_sampler.sample(rng))
                if self.size_sampler is not None else 512)
        return Request(tenant_id=tenant_id, size_bytes=size,
                       event_times=event_times, handler=self.handler)


@dataclass
class FixedFactory:
    """Deterministic requests — used by walkthrough and unit tests."""

    event_times: Tuple[float, ...] = (0.001,)
    size_bytes: int = 512
    handler: str = "http"

    def build(self, rng: Stream, tenant_id: int = 0) -> Request:
        return Request(tenant_id=tenant_id, size_bytes=self.size_bytes,
                       event_times=self.event_times, handler=self.handler)


def _split_total(total: float, n_events: int,
                 rng: Stream) -> Tuple[float, ...]:
    """Split a total service time across events with random proportions."""
    if n_events == 1:
        return (total,)
    weights = [rng.random() + 0.25 for _ in range(n_events)]
    scale = total / sum(weights)
    return tuple(w * scale for w in weights)
