"""Connection arrival processes.

Open-loop generators: arrivals occur at their own pace regardless of how
the LB keeps up, which is what exposes overload behaviour (closed-loop
clients would implicitly throttle and mask it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from ..sim.engine import Environment, Interrupt
from ..sim.rng import Stream

__all__ = ["PoissonArrivals", "PiecewiseRate", "BurstTrain"]


@dataclass(frozen=True)
class PiecewiseRate:
    """A rate function defined by (start_time, rate) steps."""

    steps: Tuple[Tuple[float, float], ...]

    def __post_init__(self):
        if not self.steps:
            raise ValueError("need at least one step")
        times = [t for t, _ in self.steps]
        if sorted(times) != times:
            raise ValueError("step times must be non-decreasing")
        if any(rate < 0 for _, rate in self.steps):
            raise ValueError("rates must be non-negative")

    def rate_at(self, t: float) -> float:
        current = self.steps[0][1]
        for start, rate in self.steps:
            if t >= start:
                current = rate
            else:
                break
        return current


class PoissonArrivals:
    """Poisson arrivals at a fixed or piecewise-constant rate.

    Calls ``sink(index)`` for every arrival.  ``rate`` may be a float or a
    :class:`PiecewiseRate` (thinning is used for the time-varying case).
    """

    def __init__(self, env: Environment, rng: Stream,
                 rate, sink: Callable[[int], None],
                 until: Optional[float] = None, name: str = "arrivals"):
        self.env = env
        self.rng = rng
        self.rate = rate
        self.sink = sink
        self.until = until
        self.count = 0
        self._proc = env.process(self._run(), name=name)

    def _peak_rate(self) -> float:
        if isinstance(self.rate, PiecewiseRate):
            return max(rate for _, rate in self.rate.steps)
        return float(self.rate)

    def _rate_at(self, t: float) -> float:
        if isinstance(self.rate, PiecewiseRate):
            return self.rate.rate_at(t)
        return float(self.rate)

    def _run(self):
        peak = self._peak_rate()
        if peak <= 0:
            return
        try:
            while self.until is None or self.env.now < self.until:
                gap = self.rng.expovariate(peak)
                yield self.env.timeout(gap)
                if self.until is not None and self.env.now >= self.until:
                    return
                # Thinning: accept with probability rate(t)/peak.
                current = self._rate_at(self.env.now)
                if current >= peak or self.rng.random() < current / peak:
                    self.sink(self.count)
                    self.count += 1
        except Interrupt:
            return

    def stop(self) -> None:
        if self._proc.is_alive:
            self._proc.interrupt("stopped")


class BurstTrain:
    """Deterministic bursts: ``burst_size`` simultaneous arrivals every
    ``interval`` — the synchronized-surge pattern of Fig. 3."""

    def __init__(self, env: Environment, burst_size: int, interval: float,
                 sink: Callable[[int], None],
                 start: float = 0.0, n_bursts: Optional[int] = None,
                 name: str = "bursts"):
        if burst_size < 1 or interval <= 0:
            raise ValueError("need burst_size >= 1 and interval > 0")
        self.env = env
        self.burst_size = burst_size
        self.interval = interval
        self.sink = sink
        self.start = start
        self.n_bursts = n_bursts
        self.count = 0
        self._proc = env.process(self._run(), name=name)

    def _run(self):
        if self.start > 0:
            yield self.env.timeout(self.start)
        fired = 0
        try:
            while self.n_bursts is None or fired < self.n_bursts:
                for _ in range(self.burst_size):
                    self.sink(self.count)
                    self.count += 1
                fired += 1
                yield self.env.timeout(self.interval)
        except Interrupt:
            return

    def stop(self) -> None:
        if self._proc.is_alive:
            self._proc.interrupt("stopped")
