"""Trace-driven workload library beyond the paper's four cases.

Each :class:`WorkloadFamily` is a named generator of :class:`Trace`
objects — replayable via :class:`TraceReplayer` against any target that
speaks the ``connect``/``deliver`` protocol (an :class:`~repro.lb.server.
LBServer`, a :class:`~repro.fleet.Fleet`, or a test sink).  Families are
pure functions of ``(params, rng)``: the same parameters and seeded stream
always produce a byte-identical trace, which is what lets the fuzzer
shrink and replay scenarios deterministically.

The five families cover the regimes the related work studies but the
paper's evaluation does not:

- ``diurnal`` — a sinusoidal day-curve of connection arrivals (the cloud
  LB's steady-state shape).
- ``flash_crowd`` — a base rate with a sudden ``spike_factor``× window
  (breaking-news traffic).
- ``heavy_hitter_churn`` — multi-tenant traffic where the hot tenant
  rotates, so the heavy hitter keeps moving between ports.
- ``fanout_chain`` — XLB's microservice setting: each root request spawns
  a ``fanout``-ary tree of short internal calls, ``depth`` hops deep.
- ``longlived_surge`` — Concury's regime at 10× the Fig. 3 scale: a large
  population of long-lived connections established quietly, then hit by
  synchronized request bursts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

from ..kernel.hash import FourTuple
from ..sim.rng import Stream
from .trace import Trace

__all__ = [
    "FAMILIES",
    "WorkloadFamily",
    "build_family_trace",
    "family_names",
]


def _four_tuple(rng: Stream, n_client_ips: int, port: int) -> FourTuple:
    from .generator import LB_IP

    return FourTuple(0x0A000000 + rng.randrange(n_client_ips),
                     rng.randrange(1024, 65535), LB_IP, port)


def _service_times(rng: Stream, mean_us: float, n: int) -> Tuple[float, ...]:
    return tuple(rng.expovariate(1.0 / (mean_us * 1e-6)) for _ in range(n))


def _record_conn(trace: Trace, rng: Stream, time: float, conn_key: int,
                 four_tuple: FourTuple, tenant_id: int, n_requests: int,
                 mean_service_us: float, size: int, gap_mean: float) -> None:
    """Record one open → requests → close connection lifetime."""
    trace.record_open(time, conn_key, four_tuple, tenant_id=tenant_id)
    at = time + 100e-6
    for _ in range(n_requests):
        trace.record_request(at, conn_key, four_tuple,
                             _service_times(rng, mean_service_us, 1),
                             size=size, tenant_id=tenant_id)
        if gap_mean > 0:
            at += rng.expovariate(1.0 / gap_mean)
    trace.record_close(at + 100e-6, conn_key, four_tuple)


def _thinned_arrivals(rng: Stream, duration: float, peak: float,
                      rate_at: Callable[[float], float]) -> List[float]:
    """Arrival times of a non-homogeneous Poisson process (thinning)."""
    times: List[float] = []
    t = 0.0
    if peak <= 0:
        return times
    while True:
        t += rng.expovariate(peak)
        if t >= duration:
            return times
        if rng.random() < rate_at(t) / peak:
            times.append(t)


@dataclass(frozen=True)
class WorkloadFamily:
    """A named, seeded generator of traces.

    ``sampler`` draws a random-but-valid parameter dict; ``builder``
    materializes a trace from one; ``shrinkers`` maps parameter names to
    their minimum value — the generic :meth:`shrink` halves each one
    toward that floor, giving the fuzzer's shrinker smaller candidate
    workloads that stay in-family.
    """

    name: str
    description: str
    defaults: Dict[str, object]
    sampler: Callable[[Stream], Dict[str, object]]
    builder: Callable[[Dict[str, object], Stream], Trace]
    shrinkers: Dict[str, float] = field(default_factory=dict)

    def sample(self, rng: Stream) -> Dict[str, object]:
        params = dict(self.defaults)
        params.update(self.sampler(rng))
        return params

    def build(self, params: Dict[str, object], rng: Stream) -> Trace:
        merged = dict(self.defaults)
        merged.update(params)
        return self.builder(merged, rng)

    def shrink(self, params: Dict[str, object]) -> List[Dict[str, object]]:
        candidates: List[Dict[str, object]] = []
        for key, floor in self.shrinkers.items():
            value = params.get(key, self.defaults.get(key))
            if value is None:
                continue
            if isinstance(value, int):
                smaller: object = max(int(floor), value // 2)
            else:
                smaller = max(float(floor), float(value) / 2)
            if smaller != value:
                shrunk = dict(params)
                shrunk[key] = smaller
                candidates.append(shrunk)
        return candidates


# -- diurnal ----------------------------------------------------------------

def _sample_diurnal(rng: Stream) -> Dict[str, object]:
    return {
        "duration": round(rng.uniform(0.8, 2.0), 3),
        "base_rate": round(rng.uniform(40.0, 120.0), 1),
        "amplitude": round(rng.uniform(0.3, 0.9), 2),
        "requests_per_conn": rng.randrange(1, 4),
    }


def _build_diurnal(params: Dict[str, object], rng: Stream) -> Trace:
    duration = float(params["duration"])
    base = float(params["base_rate"])
    amplitude = float(params["amplitude"])
    period = float(params["period"])
    peak = base * (1.0 + amplitude)

    def rate_at(t: float) -> float:
        return base * (1.0 + amplitude * math.sin(2 * math.pi * t / period))

    trace = Trace()
    ports = list(params["ports"])
    for conn_key, at in enumerate(
            _thinned_arrivals(rng, duration, peak, rate_at), start=1):
        tenant = rng.randrange(len(ports))
        four_tuple = _four_tuple(rng, int(params["n_client_ips"]),
                                 ports[tenant])
        _record_conn(trace, rng, at, conn_key, four_tuple, tenant,
                     int(params["requests_per_conn"]),
                     float(params["mean_service_us"]),
                     int(params["size"]), float(params["request_gap_mean"]))
    return trace


# -- flash crowd ------------------------------------------------------------

def _sample_flash_crowd(rng: Stream) -> Dict[str, object]:
    duration = round(rng.uniform(0.8, 2.0), 3)
    spike_at = round(rng.uniform(0.2, 0.5) * duration, 3)
    return {
        "duration": duration,
        "base_rate": round(rng.uniform(20.0, 60.0), 1),
        "spike_at": spike_at,
        "spike_duration": round(rng.uniform(0.1, 0.3) * duration, 3),
        "spike_factor": round(rng.uniform(4.0, 10.0), 1),
        "requests_per_conn": rng.randrange(1, 3),
    }


def _build_flash_crowd(params: Dict[str, object], rng: Stream) -> Trace:
    duration = float(params["duration"])
    base = float(params["base_rate"])
    factor = float(params["spike_factor"])
    spike_at = float(params["spike_at"])
    spike_end = spike_at + float(params["spike_duration"])
    peak = base * factor

    def rate_at(t: float) -> float:
        return peak if spike_at <= t < spike_end else base

    trace = Trace()
    ports = list(params["ports"])
    for conn_key, at in enumerate(
            _thinned_arrivals(rng, duration, peak, rate_at), start=1):
        tenant = rng.randrange(len(ports))
        four_tuple = _four_tuple(rng, int(params["n_client_ips"]),
                                 ports[tenant])
        _record_conn(trace, rng, at, conn_key, four_tuple, tenant,
                     int(params["requests_per_conn"]),
                     float(params["mean_service_us"]),
                     int(params["size"]), float(params["request_gap_mean"]))
    return trace


# -- heavy-hitter tenant churn ----------------------------------------------

def _sample_heavy_hitter(rng: Stream) -> Dict[str, object]:
    return {
        "duration": round(rng.uniform(0.8, 2.0), 3),
        "rate": round(rng.uniform(40.0, 120.0), 1),
        "n_tenants": rng.randrange(3, 7),
        "hot_share": round(rng.uniform(0.5, 0.9), 2),
        "rotate_every": round(rng.uniform(0.2, 0.6), 3),
    }


def _build_heavy_hitter(params: Dict[str, object], rng: Stream) -> Trace:
    duration = float(params["duration"])
    rate = float(params["rate"])
    n_tenants = int(params["n_tenants"])
    hot_share = float(params["hot_share"])
    rotate_every = float(params["rotate_every"])
    base_port = int(params["base_port"])

    trace = Trace()
    for conn_key, at in enumerate(
            _thinned_arrivals(rng, duration, rate, lambda t: rate), start=1):
        hot = int(at / rotate_every) % n_tenants
        if rng.random() < hot_share or n_tenants == 1:
            tenant = hot
        else:
            tenant = rng.randrange(n_tenants - 1)
            if tenant >= hot:
                tenant += 1
        four_tuple = _four_tuple(rng, int(params["n_client_ips"]),
                                 base_port + tenant)
        _record_conn(trace, rng, at, conn_key, four_tuple, tenant,
                     int(params["requests_per_conn"]),
                     float(params["mean_service_us"]),
                     int(params["size"]), float(params["request_gap_mean"]))
    return trace


# -- microservice fan-out chains --------------------------------------------

def _sample_fanout(rng: Stream) -> Dict[str, object]:
    return {
        "duration": round(rng.uniform(0.5, 1.5), 3),
        "root_rate": round(rng.uniform(10.0, 40.0), 1),
        "fanout": rng.randrange(2, 4),
        "depth": rng.randrange(1, 4),
    }


def _build_fanout(params: Dict[str, object], rng: Stream) -> Trace:
    duration = float(params["duration"])
    root_rate = float(params["root_rate"])
    fanout = int(params["fanout"])
    depth = int(params["depth"])
    hop_delay = float(params["hop_delay"])
    ports = list(params["ports"])

    trace = Trace()
    conn_key = 0

    def spawn(at: float, level: int) -> None:
        nonlocal conn_key
        conn_key += 1
        port = ports[level % len(ports)]
        four_tuple = _four_tuple(rng, int(params["n_client_ips"]), port)
        _record_conn(trace, rng, at, conn_key, four_tuple, level, 1,
                     float(params["mean_service_us"]),
                     int(params["size"]), 0.0)
        if level < depth:
            for _ in range(fanout):
                spawn(at + hop_delay * rng.uniform(0.8, 1.2), level + 1)

    for at in _thinned_arrivals(rng, duration, root_rate,
                                lambda t: root_rate):
        spawn(at, 0)
    return trace


# -- long-lived-connection surges (10× Fig. 3) ------------------------------

def _sample_longlived(rng: Stream) -> Dict[str, object]:
    return {
        "n_connections": rng.randrange(1000, 4001),
        "surge_requests": rng.randrange(2, 5),
        "n_bursts": rng.randrange(1, 3),
    }


def _build_longlived(params: Dict[str, object], rng: Stream) -> Trace:
    n_connections = int(params["n_connections"])
    connect_window = float(params["connect_window"])
    surge_at = float(params["surge_at"])
    surge_requests = int(params["surge_requests"])
    n_bursts = int(params["n_bursts"])
    burst_gap = float(params["burst_gap"])
    ports = list(params["ports"])

    trace = Trace()
    conns = []
    for conn_key in range(1, n_connections + 1):
        at = rng.uniform(0.0, connect_window)
        tenant = rng.randrange(len(ports))
        four_tuple = _four_tuple(rng, int(params["n_client_ips"]),
                                 ports[tenant])
        trace.record_open(at, conn_key, four_tuple, tenant_id=tenant)
        conns.append((conn_key, four_tuple, tenant))
    close_at = surge_at
    for burst in range(n_bursts):
        burst_time = surge_at + burst * burst_gap
        for conn_key, four_tuple, tenant in conns:
            for i in range(surge_requests):
                trace.record_request(
                    burst_time + i * 1e-4, conn_key, four_tuple,
                    _service_times(rng, float(params["mean_service_us"]), 1),
                    size=int(params["size"]), tenant_id=tenant)
        close_at = burst_time + surge_requests * 1e-4
    for conn_key, four_tuple, _ in conns:
        trace.record_close(close_at + 1e-3, conn_key, four_tuple)
    return trace


_COMMON_DEFAULTS = {
    "ports": (443,),
    "n_client_ips": 64,
    "mean_service_us": 250.0,
    "size": 512,
    "request_gap_mean": 0.0,
    "requests_per_conn": 1,
}

FAMILIES: Dict[str, WorkloadFamily] = {}


def _register(family: WorkloadFamily) -> WorkloadFamily:
    FAMILIES[family.name] = family
    return family


_register(WorkloadFamily(
    name="diurnal",
    description="sinusoidal day-curve of connection arrivals",
    defaults={**_COMMON_DEFAULTS, "duration": 1.0, "base_rate": 80.0,
              "amplitude": 0.6, "period": 1.0},
    sampler=_sample_diurnal,
    builder=_build_diurnal,
    shrinkers={"duration": 0.1, "base_rate": 5.0, "requests_per_conn": 1},
))

_register(WorkloadFamily(
    name="flash_crowd",
    description="base rate with a sudden spike_factor× window",
    defaults={**_COMMON_DEFAULTS, "duration": 1.0, "base_rate": 40.0,
              "spike_at": 0.4, "spike_duration": 0.2, "spike_factor": 6.0},
    sampler=_sample_flash_crowd,
    builder=_build_flash_crowd,
    shrinkers={"duration": 0.1, "base_rate": 5.0, "spike_factor": 1.0},
))

_register(WorkloadFamily(
    name="heavy_hitter_churn",
    description="multi-tenant traffic with a rotating hot tenant",
    defaults={**_COMMON_DEFAULTS, "duration": 1.0, "rate": 80.0,
              "n_tenants": 4, "hot_share": 0.7, "rotate_every": 0.3,
              "base_port": 443},
    sampler=_sample_heavy_hitter,
    builder=_build_heavy_hitter,
    shrinkers={"duration": 0.1, "rate": 5.0, "n_tenants": 1},
))

_register(WorkloadFamily(
    name="fanout_chain",
    description="microservice fan-out trees (XLB's setting)",
    defaults={**_COMMON_DEFAULTS, "duration": 1.0, "root_rate": 20.0,
              "fanout": 2, "depth": 2, "hop_delay": 500e-6,
              "ports": (443, 8080, 9090)},
    sampler=_sample_fanout,
    builder=_build_fanout,
    shrinkers={"duration": 0.1, "root_rate": 2.0, "fanout": 1, "depth": 0},
))

_register(WorkloadFamily(
    name="longlived_surge",
    description="long-lived connections hit by synchronized surges "
                "(10× Fig. 3 scale)",
    defaults={**_COMMON_DEFAULTS, "n_connections": 4000,
              "connect_window": 0.5, "surge_at": 0.8, "surge_requests": 3,
              "n_bursts": 1, "burst_gap": 0.2},
    sampler=_sample_longlived,
    builder=_build_longlived,
    shrinkers={"n_connections": 8, "surge_requests": 1, "n_bursts": 1},
))


def family_names() -> List[str]:
    return sorted(FAMILIES)


def build_family_trace(name: str, params: Dict[str, object],
                       rng: Stream) -> Trace:
    """Materialize one family's trace from explicit parameters."""
    try:
        family = FAMILIES[name]
    except KeyError:
        raise KeyError(f"unknown workload family {name!r}; "
                       f"known: {', '.join(family_names())}") from None
    return family.build(params, rng)
