"""Traffic trace record & replay.

§6.2: "we collected and replayed traffic from them.  Additionally, we
replayed traffic at 2 to 3 times the original rate to emulate medium and
heavy workloads."  A :class:`Trace` records connection-open and request
events with their timestamps; :class:`TraceReplayer` re-issues them against
a target, optionally compressing time by a rate multiplier (2× rate ==
timestamps divided by 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..kernel.hash import FourTuple
from ..kernel.tcp import Connection, ConnState, Request
from ..sim.engine import Environment

__all__ = ["Trace", "TraceEvent", "TraceReplayer", "build_trace_from_spec"]


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event.

    ``kind`` is "open", "request", or "close".  ``conn_key`` groups events
    of the same original connection.  For requests, ``event_times`` carries
    the per-event processing times and ``size`` the request size.  ``None``
    means "never recorded" (open/close events, or hand-built requests);
    a recorded zero is a real zero and replays as such.
    """

    time: float
    kind: str
    conn_key: int
    four_tuple: FourTuple
    tenant_id: int = 0
    event_times: Optional[Tuple[float, ...]] = None
    size: Optional[int] = None

    def to_dict(self) -> dict:
        return {
            "time": self.time,
            "kind": self.kind,
            "conn_key": self.conn_key,
            "four_tuple": list(self.four_tuple),
            "tenant_id": self.tenant_id,
            "event_times": (None if self.event_times is None
                            else list(self.event_times)),
            "size": self.size,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TraceEvent":
        event_times = data.get("event_times")
        return cls(
            time=data["time"],
            kind=data["kind"],
            conn_key=data["conn_key"],
            four_tuple=FourTuple(*data["four_tuple"]),
            tenant_id=data.get("tenant_id", 0),
            event_times=(None if event_times is None
                         else tuple(event_times)),
            size=data.get("size"),
        )


@dataclass
class Trace:
    """An ordered list of trace events."""

    events: List[TraceEvent] = field(default_factory=list)

    def record_open(self, time: float, conn_key: int,
                    four_tuple: FourTuple, tenant_id: int = 0) -> None:
        self.events.append(TraceEvent(time, "open", conn_key, four_tuple,
                                      tenant_id))

    def record_request(self, time: float, conn_key: int,
                       four_tuple: FourTuple,
                       event_times: Sequence[float],
                       size: int = 512, tenant_id: int = 0) -> None:
        self.events.append(TraceEvent(
            time, "request", conn_key, four_tuple, tenant_id,
            tuple(event_times), size))

    def record_close(self, time: float, conn_key: int,
                     four_tuple: FourTuple) -> None:
        self.events.append(TraceEvent(time, "close", conn_key, four_tuple))

    def sorted_events(self) -> List[TraceEvent]:
        return sorted(self.events, key=lambda e: e.time)

    def to_dict(self) -> dict:
        return {"events": [event.to_dict() for event in self.events]}

    @classmethod
    def from_dict(cls, data: dict) -> "Trace":
        return cls(events=[TraceEvent.from_dict(e)
                           for e in data.get("events", ())])

    @property
    def duration(self) -> float:
        return max((e.time for e in self.events), default=0.0)

    def __len__(self) -> int:
        return len(self.events)


def build_trace_from_spec(spec, rng) -> Trace:
    """Materialize a workload spec into a concrete trace.

    Samples the same arrival process, tuples, and request shapes a
    :class:`~repro.workloads.generator.TrafficGenerator` would produce,
    but records them instead of sending them — the "collect and replay"
    workflow of §6.2.
    """
    from .generator import LB_IP

    trace = Trace()
    time = 0.0
    conn_key = 0
    while True:
        time += rng.expovariate(spec.conn_rate)
        if time >= spec.duration:
            break
        conn_key += 1
        port_index = rng.randrange(len(spec.ports))
        four_tuple = FourTuple(
            0x0A000000 + rng.randrange(spec.n_client_ips),
            rng.randrange(1024, 65535), LB_IP, spec.ports[port_index])
        trace.record_open(time, conn_key, four_tuple, tenant_id=port_index)
        request_time = time + spec.first_request_delay
        for i in range(spec.requests_per_conn):
            request = spec.factory.build(rng, tenant_id=port_index)
            trace.record_request(request_time, conn_key, four_tuple,
                                 request.event_times, request.size_bytes,
                                 tenant_id=port_index)
            if spec.request_gap_mean > 0:
                request_time += rng.expovariate(1.0 / spec.request_gap_mean)
        trace.record_close(request_time, conn_key, four_tuple)
    return trace


class TraceReplayer:
    """Replays a trace against a target at ``rate`` × original speed."""

    def __init__(self, env: Environment, target, trace: Trace,
                 rate: float = 1.0):
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.env = env
        self.target = target
        self.trace = trace
        self.rate = rate
        self.replayed = 0
        self.skipped = 0
        self._conns: dict = {}
        self._proc: Optional[object] = None

    def start(self) -> None:
        self._proc = self.env.process(self._run(), name="trace-replay")

    @property
    def finished(self) -> bool:
        return self._proc is not None and not self._proc.is_alive

    def _run(self):
        start = self.env.now
        for event in self.trace.sorted_events():
            due = start + event.time / self.rate
            if due > self.env.now:
                yield self.env.timeout(due - self.env.now)
            self._apply(event)
        # End-of-trace drain: a truncated trace may leave connections with
        # no recorded close — close them so conservation invariants balance.
        # Drained closes correspond to no trace event, so they count toward
        # neither ``replayed`` nor ``skipped``.
        for conn in self._conns.values():
            conn.client_close()
        self._conns.clear()
        assert self.replayed + self.skipped == len(self.trace), (
            f"trace accounting leak: {self.replayed} replayed + "
            f"{self.skipped} skipped != {len(self.trace)} events")

    def _apply(self, event: TraceEvent) -> None:
        if event.kind == "open":
            conn = Connection(event.four_tuple, tenant_id=event.tenant_id,
                              created_time=self.env.now)
            if self.target.connect(conn):
                self._conns[event.conn_key] = conn
                self.replayed += 1
            else:
                self.skipped += 1
        elif event.kind == "request":
            conn = self._conns.get(event.conn_key)
            if conn is None or conn.state in (ConnState.RESET,
                                              ConnState.REFUSED,
                                              ConnState.CLOSED):
                self.skipped += 1
                return
            request = Request(
                tenant_id=event.tenant_id,
                size_bytes=event.size if event.size is not None else 512,
                event_times=(event.event_times
                             if event.event_times is not None else (0.001,)))
            self.target.deliver(conn, request)
            self.replayed += 1
        elif event.kind == "close":
            conn = self._conns.pop(event.conn_key, None)
            if conn is not None:
                conn.client_close()
                self.replayed += 1
            else:
                # The matching open was refused (or already closed): the
                # close still consumed a trace event — account for it.
                self.skipped += 1
        else:
            raise ValueError(f"unknown trace event kind {event.kind!r}")
