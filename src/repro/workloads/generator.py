"""The traffic generator: open-loop clients driving an LB device.

A :class:`TrafficGenerator` owns client-side state: it opens connections
(sampling 4-tuples, tenants, ports), delivers request data on them, closes
them, and optionally reconnects when the LB resets a connection (the
client-retry behaviour behind the paper's service-degradation and
crash-blast-radius discussions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Protocol, Sequence, Tuple

from ..kernel.hash import FourTuple
from ..kernel.tcp import Connection, ConnState, Request
from ..sim.engine import Environment, Interrupt
from ..sim.rng import Stream
from .arrivals import PoissonArrivals

__all__ = ["TrafficGenerator", "WorkloadSpec", "ClientStats"]

#: The LB device's own address in synthetic 4-tuples.
LB_IP = 0xC0A80001


class _Target(Protocol):
    """What the generator drives (an LBServer or a cluster frontend)."""

    def connect(self, connection: Connection) -> bool: ...  # pragma: no cover

    def deliver(self, connection: Connection,
                request: Request) -> None: ...  # pragma: no cover


@dataclass
class WorkloadSpec:
    """One workload: arrival process + per-connection behaviour."""

    name: str
    #: New connections per second (CPS).
    conn_rate: float
    #: Generator keeps opening connections until this sim time.
    duration: float
    #: Builds request payloads (RequestFactory/FixedFactory compatible).
    factory: object
    #: Destination ports, sampled per connection via ``tenant_weights``.
    ports: Sequence[int] = (443,)
    #: Relative traffic share per port (None = uniform).
    tenant_weights: Optional[Sequence[float]] = None
    #: Tenant id per port (None = the port's index).  Lets multiple
    #: generators share a device without colliding in per-tenant metrics.
    tenant_ids: Optional[Sequence[int]] = None
    #: Requests sent on each connection.
    requests_per_conn: int = 1
    #: Mean gap between requests on one connection (exponential); 0 sends
    #: them back-to-back.
    request_gap_mean: float = 0.0
    #: Distinct client source IPs (small values create heavy hitters that
    #: collide in the reuseport hash).
    n_client_ips: int = 65536
    #: Reconnect (once) when the LB resets the connection.
    reconnect_on_reset: bool = False
    #: Delay before the client sends its first request after SYN.
    first_request_delay: float = 0.0
    #: Client-side request deadline: a request not completed within this
    #: window counts as a 499 (client closed / timed out), the failure
    #: class the paper's probe SLA maps to.  None = patient clients.
    request_timeout: Optional[float] = None


@dataclass
class ClientStats:
    """Client-observed outcomes."""

    connections_opened: int = 0
    connections_refused: int = 0
    connections_reset: int = 0
    reconnects: int = 0
    requests_sent: int = 0
    #: Requests that missed the client deadline (HTTP 499 territory).
    timeouts_499: int = 0


class TrafficGenerator:
    """Drives one workload spec against a target LB."""

    def __init__(self, env: Environment, target: _Target, rng: Stream,
                 spec: WorkloadSpec):
        self.env = env
        self.target = target
        self.rng = rng
        self.spec = spec
        self.stats = ClientStats()
        self._arrivals: Optional[PoissonArrivals] = None
        self._cumulative_weights = self._build_weights()

    def _build_weights(self) -> List[float]:
        spec = self.spec
        weights = (list(spec.tenant_weights) if spec.tenant_weights
                   else [1.0] * len(spec.ports))
        if len(weights) != len(spec.ports):
            raise ValueError("tenant_weights must match ports")
        total = sum(weights)
        acc, cumulative = 0.0, []
        for w in weights:
            acc += w / total
            cumulative.append(acc)
        return cumulative

    def _tenant_for(self, index: int) -> int:
        ids = self.spec.tenant_ids
        if ids is None:
            return index
        if len(ids) != len(self.spec.ports):
            raise ValueError("tenant_ids must match ports")
        return ids[index]

    def _pick_port(self) -> Tuple[int, int]:
        """(tenant id, port) weighted by tenant share."""
        u = self.rng.random()
        for index, threshold in enumerate(self._cumulative_weights):
            if u <= threshold:
                return self._tenant_for(index), self.spec.ports[index]
        last = len(self.spec.ports) - 1
        return self._tenant_for(last), self.spec.ports[last]

    def _four_tuple(self, port: int) -> FourTuple:
        src_ip = 0x0A000000 + self.rng.randrange(self.spec.n_client_ips)
        src_port = self.rng.randrange(1024, 65535)
        return FourTuple(src_ip, src_port, LB_IP, port)

    # -- public API -------------------------------------------------------
    def start(self) -> None:
        """Begin opening connections per the spec's arrival process."""
        self._arrivals = PoissonArrivals(
            self.env, self.rng, self.spec.conn_rate,
            sink=lambda _i: self.open_connection(),
            until=self.spec.duration, name=f"gen:{self.spec.name}")

    def stop(self) -> None:
        if self._arrivals is not None:
            self._arrivals.stop()

    def open_connection(self, tenant_id: Optional[int] = None,
                        port: Optional[int] = None,
                        requests: Optional[int] = None) -> Connection:
        """Open one connection and spawn its client process."""
        if port is None or tenant_id is None:
            tenant_id, port = self._pick_port()
        conn = Connection(self._four_tuple(port), tenant_id=tenant_id,
                          created_time=self.env.now)
        self.stats.connections_opened += 1
        accepted = self.target.connect(conn)
        if not accepted:
            self.stats.connections_refused += 1
            return conn
        n = requests if requests is not None else self.spec.requests_per_conn
        self.env.process(self._client(conn, n), name=f"client:{conn.id}")
        return conn

    # -- client behaviour -------------------------------------------------
    def _client(self, conn: Connection, n_requests: int,
                is_retry: bool = False):
        spec = self.spec
        try:
            if spec.first_request_delay > 0:
                yield spec.first_request_delay  # direct timer
            for i in range(n_requests):
                if conn.state in (ConnState.RESET, ConnState.REFUSED):
                    self._on_reset(conn, n_requests - i, is_retry)
                    return
                request = spec.factory.build(self.rng, tenant_id=conn.tenant_id)
                self.target.deliver(conn, request)
                self.stats.requests_sent += 1
                if spec.request_timeout is not None:
                    self._arm_timeout(request, spec.request_timeout)
                if spec.request_gap_mean > 0 and i < n_requests - 1:
                    # Direct timer: the RNG draw order and the heap key are
                    # identical to the env.timeout(...) form.
                    yield self.rng.expovariate(1.0 / spec.request_gap_mean)
            if conn.state in (ConnState.RESET, ConnState.REFUSED):
                self._on_reset(conn, 0, is_retry)
                return
            conn.client_close()
        except Interrupt:
            return

    def _arm_timeout(self, request: Request, deadline: float) -> None:
        def check():
            if (request.completed_time < 0
                    or request.completed_time - request.arrival_time
                    > deadline):
                self.stats.timeouts_499 += 1

        self.env.schedule_callback(deadline, check)

    def _on_reset(self, conn: Connection, remaining: int,
                  is_retry: bool) -> None:
        self.stats.connections_reset += 1
        if self.spec.reconnect_on_reset and not is_retry and remaining > 0:
            self.stats.reconnects += 1
            fresh = Connection(self._four_tuple(conn.port),
                               tenant_id=conn.tenant_id,
                               created_time=self.env.now)
            self.stats.connections_opened += 1
            if self.target.connect(fresh):
                self.env.process(self._client(fresh, remaining, is_retry=True),
                                 name=f"client:{fresh.id}:retry")
            else:
                self.stats.connections_refused += 1
