"""repro — a reproduction of Hermes (SIGCOMM 2025).

Userspace-directed I/O event notification for Layer-7 cloud load balancers,
rebuilt on a discrete-event simulation of the Linux kernel substrate it
extends (epoll, wait queues, SO_REUSEPORT, eBPF socket selection).

Quickstart::

    from repro import Environment, LBServer, NotificationMode
    from repro.workloads import build_case_workload, TrafficGenerator
    from repro.sim import RngRegistry

    env = Environment()
    lb = LBServer(env, n_workers=8, ports=[443],
                  mode=NotificationMode.HERMES)
    lb.start()
    spec = build_case_workload("case1", "light", n_workers=8, duration=2.0)
    gen = TrafficGenerator(env, lb, RngRegistry(7).stream("traffic"), spec)
    gen.start()
    env.run(until=3.0)
    print(lb.metrics.summary())
"""

from .core import HermesConfig
from .lb import LBServer, NotificationMode, ServiceProfile
from .obs import FlightRecorder, Tracer
from .sim import Environment, RngRegistry

__version__ = "1.0.0"

__all__ = [
    "Environment",
    "FlightRecorder",
    "HermesConfig",
    "LBServer",
    "NotificationMode",
    "RngRegistry",
    "ServiceProfile",
    "Tracer",
    "__version__",
]
