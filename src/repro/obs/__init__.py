"""Observability: structured tracing, span timelines, flight recording.

The paper's central claims are about *where time goes* between a kernel
event and userspace processing (Figs. 3-5, 13).  This package provides the
measurement substrate to answer that per request instead of in aggregate:

- :mod:`repro.obs.trace` — a :class:`Tracer` with zero-cost-when-disabled
  structured events and nestable spans, stamped with the simulation clock.
- :mod:`repro.obs.context` — trace-context propagation so a connection's id
  flows through synchronous kernel call chains (reuseport selection,
  wait-queue wakeup, epoll callback) without threading parameters.
- :mod:`repro.obs.recorder` — a bounded ring-buffer flight recorder that
  always keeps the last N events for post-mortem analysis.
- :mod:`repro.obs.export` — Chrome/Perfetto ``trace_event`` JSON and JSONL.
- :mod:`repro.obs.timeline` — per-request span reassembly and the
  kernel-wait / queue-wait / service critical-path decomposition (Fig. 5
  from traces instead of bespoke counters).

Instrumentation is opt-in: every hook is an optional ``tracer=`` parameter
defaulting to ``None``, and a ``None`` tracer leaves the simulated system
bit-identical to an uninstrumented run (no RNG draws, no scheduled events).
"""

from .context import TraceContext
from .recorder import FlightRecorder
from .export import (
    event_to_dict,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from .timeline import (
    RequestTimeline,
    build_timelines,
    summarize_timelines,
)
from .trace import (
    CAT_FAULT,
    CAT_KERNEL,
    CAT_NET,
    CAT_SCHED,
    CAT_SWEEP,
    CAT_WORKER,
    TraceEvent,
    Tracer,
)

__all__ = [
    "CAT_FAULT",
    "CAT_KERNEL",
    "CAT_NET",
    "CAT_SCHED",
    "CAT_SWEEP",
    "CAT_WORKER",
    "FlightRecorder",
    "RequestTimeline",
    "TraceContext",
    "TraceEvent",
    "Tracer",
    "build_timelines",
    "event_to_dict",
    "summarize_timelines",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
]
