"""Trace-context propagation for synchronous kernel call chains.

The kernel layers deliberately do not know about connections or workers
beyond what the real kernel would (a reuseport group sees a 4-tuple, a wait
queue sees opaque entries).  To still tag their trace events with the
connection that triggered them, the layer that *does* know (``NetStack``,
``Worker``) pushes ids onto a context stack around the synchronous call, and
every event emitted inside inherits them.

The stack is only valid across *synchronous* call chains: the simulation is
single-threaded and a scope must not span a generator ``yield`` (another
process would run inside it).  All uses in the tree follow that rule —
SYN handling (`connect` → select → enqueue → wake → epoll callback) and
request delivery are plain call chains, and the scheduler cascade runs
without yielding inside one worker-loop iteration.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, List, Optional

__all__ = ["TraceContext"]

#: The id keys a context frame may carry.
ID_KEYS = ("worker", "conn", "request")


class TraceContext:
    """A stack of id frames; the top frame is merged into emitted events."""

    __slots__ = ("_stack",)

    def __init__(self) -> None:
        # Each frame is the *merged* view at that depth, so `current` is O(1).
        self._stack: List[Dict[str, int]] = []

    def push(self, worker: Optional[int] = None, conn: Optional[int] = None,
             request: Optional[int] = None) -> None:
        top = self._stack[-1] if self._stack else {}
        frame = dict(top)
        if worker is not None:
            frame["worker"] = worker
        if conn is not None:
            frame["conn"] = conn
        if request is not None:
            frame["request"] = request
        self._stack.append(frame)

    def pop(self) -> None:
        self._stack.pop()

    @property
    def current(self) -> Dict[str, int]:
        """The merged ids visible at the current depth (empty when idle)."""
        return self._stack[-1] if self._stack else {}

    @property
    def depth(self) -> int:
        return len(self._stack)

    @contextmanager
    def scope(self, worker: Optional[int] = None, conn: Optional[int] = None,
              request: Optional[int] = None):
        """``with ctx.scope(conn=cid): ...`` — push/pop around a call chain."""
        self.push(worker=worker, conn=conn, request=request)
        try:
            yield self
        finally:
            self.pop()
