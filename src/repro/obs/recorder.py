"""The flight recorder: a bounded ring buffer of the last N events.

Full tracing of a long run is expensive and often unnecessary — what the
operator wants after a crash or degradation incident is *the last few
thousand events before it happened*.  The flight recorder keeps exactly the
configured number of most-recent events under sustained load, overwriting
the oldest, so post-mortem analysis is always possible at O(N) memory no
matter how long the run was.

Wire it through a tracer in flight-only mode::

    flight = FlightRecorder(capacity=4096)
    tracer = Tracer(recorder=flight, keep_events=False)

and dump after the incident with :meth:`FlightRecorder.dump` (dicts) or
:meth:`FlightRecorder.write` (JSONL file).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from .trace import TraceEvent

__all__ = ["FlightRecorder"]

#: Default ring capacity.
DEFAULT_CAPACITY = 4096


class FlightRecorder:
    """A fixed-capacity ring buffer of :class:`TraceEvent` objects."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._ring: Deque[TraceEvent] = deque(maxlen=capacity)
        #: Total events ever recorded (including overwritten ones).
        self.total_recorded = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def overwritten(self) -> int:
        """Events that fell off the head of the ring."""
        return self.total_recorded - len(self._ring)

    def __len__(self) -> int:
        return len(self._ring)

    def record(self, event: TraceEvent) -> None:
        self._ring.append(event)
        self.total_recorded += 1

    def snapshot(self) -> List[TraceEvent]:
        """The retained events, oldest first."""
        return list(self._ring)

    def dump(self) -> List[Dict]:
        """The retained events as plain dicts (JSON-ready), oldest first."""
        from .export import event_to_dict
        return [event_to_dict(event) for event in self._ring]

    def write(self, path: str) -> int:
        """Write the retained events as JSONL; returns the event count."""
        from .export import write_jsonl
        return write_jsonl(self.snapshot(), path)

    def clear(self) -> None:
        self._ring.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<FlightRecorder {len(self._ring)}/{self._capacity} "
                f"total={self.total_recorded}>")
