"""The tracer: structured events and nestable spans on the sim clock.

A :class:`Tracer` is handed (optionally) to every instrumented component.
Emitting is cheap — an object append — and *disabled* tracing is free at
the instrumentation sites, which all follow the pattern::

    tracer = self.tracer
    if tracer is not None:
        tracer.instant("conn.accept", CAT_WORKER, conn=conn.id, ...)

so an untraced run executes exactly one attribute load and a None check per
site.  The tracer never touches the event queue or any RNG stream: enabling
it cannot perturb simulated time or experiment results.

Events are phase-tagged like the Chrome ``trace_event`` format: ``"B"``
(span begin), ``"E"`` (span end), ``"i"`` (instant).  Spans are nestable per
worker (the per-``tid`` begin/end stack of the Chrome format); analysis-side
reassembly (:mod:`repro.obs.timeline`) matches them by request id instead,
which is robust to interleaving across workers.
"""

from __future__ import annotations

from contextlib import contextmanager
from itertools import count
from typing import Any, Dict, List, Optional

from .context import TraceContext

__all__ = [
    "TraceEvent",
    "Tracer",
    "CAT_KERNEL",
    "CAT_NET",
    "CAT_WORKER",
    "CAT_SCHED",
    "CAT_FAULT",
    "CAT_SWEEP",
    "CAT_CHECK",
]

#: Kernel-side mechanisms: wait queues, epoll callbacks, reuseport selection.
CAT_KERNEL = "kernel"
#: Network stack entry points: SYNs, request delivery.
CAT_NET = "net"
#: Userspace worker loop: accepts, request service, closes.
CAT_WORKER = "worker"
#: The Hermes cascading scheduler.
CAT_SCHED = "sched"
#: Fault injection: ``fault.arm`` / ``fault.fire`` / ``fault.clear``.
CAT_FAULT = "fault"
#: Sweep orchestration: ``sweep.start`` / ``sweep.cell.done`` / ``sweep.done``.
CAT_SWEEP = "sweep"

#: Runtime invariant monitors and differential oracles (repro.check).
CAT_CHECK = "check"


class TraceEvent:
    """One structured event.  Immutable by convention, slot-packed."""

    __slots__ = ("seq", "ts", "name", "cat", "phase",
                 "worker", "conn", "request", "fields")

    def __init__(self, seq: int, ts: float, name: str, cat: str, phase: str,
                 worker: Optional[int], conn: Optional[int],
                 request: Optional[int], fields: Optional[Dict[str, Any]]):
        self.seq = seq
        self.ts = ts
        self.name = name
        self.cat = cat
        self.phase = phase
        self.worker = worker
        self.conn = conn
        self.request = request
        self.fields = fields

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ids = ".".join(f"{k}={v}" for k, v in
                       (("w", self.worker), ("c", self.conn),
                        ("r", self.request)) if v is not None)
        return (f"<TraceEvent #{self.seq} {self.phase} {self.name} "
                f"t={self.ts:.6f} {ids}>")


class Tracer:
    """Collects :class:`TraceEvent` objects stamped with ``env.now``.

    Parameters
    ----------
    env:
        The simulation environment providing the clock.  May be ``None`` at
        construction (the CLI builds the tracer before the environment
        exists); call :meth:`bind` before the run starts.
    recorder:
        An optional :class:`~repro.obs.recorder.FlightRecorder`; every
        emitted event is also pushed into its ring buffer.
    keep_events:
        When False the tracer keeps no unbounded event list — flight-
        recorder-only mode, for long or crash-prone runs.
    enabled:
        Master switch; a disabled tracer drops events at the door.
    """

    __slots__ = ("_env", "recorder", "keep_events", "enabled", "events",
                 "ctx", "_seq", "_rid", "dropped")

    def __init__(self, env=None, recorder=None, keep_events: bool = True,
                 enabled: bool = True):
        self._env = env
        self.recorder = recorder
        self.keep_events = keep_events
        self.enabled = enabled
        self.events: List[TraceEvent] = []
        self.ctx = TraceContext()
        self._seq = count()
        self._rid = count(1)
        self.dropped = 0

    # -- wiring ----------------------------------------------------------
    def bind(self, env) -> "Tracer":
        """Attach the environment whose clock stamps events."""
        self._env = env
        return self

    @property
    def now(self) -> float:
        return self._env.now if self._env is not None else 0.0

    # -- id allocation ----------------------------------------------------
    def request_id(self, request) -> int:
        """Deterministic per-run id for a request object (assigned once)."""
        rid = getattr(request, "_trace_rid", None)
        if rid is None:
            rid = next(self._rid)
            request._trace_rid = rid
        return rid

    # -- emission ----------------------------------------------------------
    def _emit(self, name: str, cat: str, phase: str,
              worker: Optional[int], conn: Optional[int],
              request: Optional[int],
              fields: Optional[Dict[str, Any]]) -> Optional[TraceEvent]:
        if not self.enabled:
            self.dropped += 1
            return None
        ctx = self.ctx.current
        if ctx:
            if worker is None:
                worker = ctx.get("worker")
            if conn is None:
                conn = ctx.get("conn")
            if request is None:
                request = ctx.get("request")
        event = TraceEvent(next(self._seq), self.now, name, cat, phase,
                           worker, conn, request, fields or None)
        if self.keep_events:
            self.events.append(event)
        if self.recorder is not None:
            self.recorder.record(event)
        return event

    def instant(self, name: str, cat: str = CAT_WORKER,
                worker: Optional[int] = None, conn: Optional[int] = None,
                request: Optional[int] = None,
                **fields: Any) -> Optional[TraceEvent]:
        """Emit a point-in-time event."""
        return self._emit(name, cat, "i", worker, conn, request, fields)

    def begin(self, name: str, cat: str = CAT_WORKER,
              worker: Optional[int] = None, conn: Optional[int] = None,
              request: Optional[int] = None,
              **fields: Any) -> Optional[TraceEvent]:
        """Open a span (matched by ``end`` with the same name/ids)."""
        return self._emit(name, cat, "B", worker, conn, request, fields)

    def end(self, name: str, cat: str = CAT_WORKER,
            worker: Optional[int] = None, conn: Optional[int] = None,
            request: Optional[int] = None,
            **fields: Any) -> Optional[TraceEvent]:
        """Close the innermost open span with this name."""
        return self._emit(name, cat, "E", worker, conn, request, fields)

    @contextmanager
    def span(self, name: str, cat: str = CAT_WORKER,
             worker: Optional[int] = None, conn: Optional[int] = None,
             request: Optional[int] = None, **fields: Any):
        """``with tracer.span("x"): ...`` for synchronous (non-yielding)
        regions.  Generator-based processes must use begin/end explicitly."""
        self.begin(name, cat, worker=worker, conn=conn, request=request,
                   **fields)
        try:
            yield self
        finally:
            self.end(name, cat, worker=worker, conn=conn, request=request)

    # -- management --------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def clear(self) -> None:
        self.events.clear()

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "on" if self.enabled else "off"
        return f"<Tracer {state} events={len(self.events)}>"
