"""Trace export: Chrome/Perfetto ``trace_event`` JSON and plain JSONL.

The Chrome format (the "Trace Event Format" consumed by ``chrome://tracing``
and https://ui.perfetto.dev) maps naturally onto our events: each worker is
a ``tid`` on one ``pid`` (the device), kernel-side events land on a
dedicated pseudo-thread, and timestamps are microseconds.

``write_chrome_trace(tracer.events, "out.json")`` produces a file Perfetto
opens directly.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional

from .trace import TraceEvent

__all__ = [
    "event_to_dict",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "KERNEL_TID",
]

#: Pseudo-tid for events with no owning worker (kernel-side machinery).
KERNEL_TID = 0

#: Simulation seconds -> exported microseconds.
TIME_SCALE = 1e6


def event_to_dict(event: TraceEvent) -> Dict[str, Any]:
    """A flat JSON-ready dict of one event (the JSONL record shape)."""
    record: Dict[str, Any] = {
        "seq": event.seq,
        "ts": event.ts,
        "name": event.name,
        "cat": event.cat,
        "ph": event.phase,
    }
    if event.worker is not None:
        record["worker"] = event.worker
    if event.conn is not None:
        record["conn"] = event.conn
    if event.request is not None:
        record["request"] = event.request
    if event.fields:
        record.update(event.fields)
    return record


def _chrome_args(event: TraceEvent) -> Dict[str, Any]:
    args: Dict[str, Any] = {}
    if event.conn is not None:
        args["conn"] = event.conn
    if event.request is not None:
        args["request"] = event.request
    if event.fields:
        args.update(event.fields)
    return args


def to_chrome_trace(events: Iterable[TraceEvent], pid: int = 1,
                    device: str = "lb") -> Dict[str, Any]:
    """Build a Chrome ``trace_event`` document from events.

    Workers become threads (``tid = worker_id + 1``); kernel-side events
    (no worker) share :data:`KERNEL_TID`.  Thread-name metadata rows make
    the Perfetto track labels readable.
    """
    trace_events: List[Dict[str, Any]] = []
    tids_seen = set()
    for event in events:
        tid = KERNEL_TID if event.worker is None else event.worker + 1
        tids_seen.add(tid)
        record: Dict[str, Any] = {
            "name": event.name,
            "cat": event.cat,
            "ph": event.phase,
            "ts": event.ts * TIME_SCALE,
            "pid": pid,
            "tid": tid,
        }
        if event.phase == "i":
            record["s"] = "t"  # thread-scoped instant
        args = _chrome_args(event)
        if args:
            record["args"] = args
        trace_events.append(record)
    meta = []
    for tid in sorted(tids_seen):
        name = "kernel" if tid == KERNEL_TID else f"worker{tid - 1}"
        meta.append({"name": "thread_name", "ph": "M", "pid": pid,
                     "tid": tid, "args": {"name": name}})
    return {
        "traceEvents": meta + trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"device": device, "clock": "simulated-seconds*1e6"},
    }


def write_chrome_trace(events: Iterable[TraceEvent], path: str,
                       pid: int = 1, device: str = "lb") -> int:
    """Write a Perfetto-openable JSON file; returns the event count."""
    document = to_chrome_trace(events, pid=pid, device=device)
    with open(path, "w") as handle:
        json.dump(document, handle)
    return len(document["traceEvents"])


def write_jsonl(events: Iterable[TraceEvent], path: str) -> int:
    """One JSON record per line (the flight-recorder dump format)."""
    n = 0
    with open(path, "w") as handle:
        for event in events:
            handle.write(json.dumps(event_to_dict(event)))
            handle.write("\n")
            n += 1
    return n
