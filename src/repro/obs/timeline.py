"""Per-request span reassembly and critical-path decomposition.

Rebuilds, from raw trace events, what Fig. 5 of the paper measures with
bespoke counters: for each request, where its end-to-end latency went —

- **kernel wait**: from request arrival (data readable in the kernel) until
  the owning worker's ``epoll_wait`` returned the batch that led to its
  processing.  This is the component the notification mechanism controls.
- **queue wait**: from that dispatch until the request's service actually
  ran, plus any gaps between its service segments — time spent behind other
  events in the same worker's batch (accepts, other connections).
- **service**: the request's own userspace processing time.

The three components are computed so they sum *exactly* to the request's
end-to-end latency (queue wait is the telescoped remainder), which is the
property the paper's decomposition relies on.

Reassembly is keyed by request id, so interleaved spans from many workers
cannot be mis-paired.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from .trace import TraceEvent

__all__ = ["RequestTimeline", "build_timelines", "summarize_timelines"]

#: Event names the reassembler consumes (kept in one place so the
#: instrumentation sites and the analysis cannot drift apart).
EV_ARRIVAL = "request.arrival"
EV_SERVICE = "request.service"
EV_COMPLETE = "request.complete"
EV_DISPATCH = "epoll.dispatch"


@dataclass
class RequestTimeline:
    """The reassembled lifecycle of one request."""

    request: int
    conn: Optional[int] = None
    worker: Optional[int] = None
    arrival: Optional[float] = None
    completed: Optional[float] = None
    #: When the serving worker's epoll_wait returned the relevant batch.
    dispatch: Optional[float] = None
    #: (begin, end) service segments, in time order.
    segments: List[Tuple[float, float]] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        return (self.arrival is not None and self.completed is not None
                and bool(self.segments))

    @property
    def latency(self) -> Optional[float]:
        if self.arrival is None or self.completed is None:
            return None
        return self.completed - self.arrival

    @property
    def service_time(self) -> float:
        return sum(end - begin for begin, end in self.segments)

    @property
    def kernel_wait(self) -> Optional[float]:
        """Arrival -> batch dispatch on the serving worker."""
        if self.arrival is None or not self.segments:
            return None
        first_start = self.segments[0][0]
        dispatch = self.dispatch if self.dispatch is not None else first_start
        # The relevant batch cannot precede the arrival that made the fd
        # readable, nor follow the service it triggered.
        dispatch = min(max(dispatch, self.arrival), first_start)
        return dispatch - self.arrival

    @property
    def queue_wait(self) -> Optional[float]:
        """Everything that is neither kernel wait nor service.

        Computed as the remainder so that
        ``kernel_wait + queue_wait + service_time == latency`` exactly.
        """
        latency = self.latency
        kernel = self.kernel_wait
        if latency is None or kernel is None:
            return None
        return latency - kernel - self.service_time

    def breakdown(self) -> Dict[str, float]:
        """The critical-path components (only valid when ``complete``)."""
        return {
            "latency": self.latency,
            "kernel_wait": self.kernel_wait,
            "queue_wait": self.queue_wait,
            "service": self.service_time,
        }


def build_timelines(events: Iterable[TraceEvent],
                    include_incomplete: bool = False,
                    ) -> List[RequestTimeline]:
    """Reassemble per-request timelines from a raw event stream.

    Events may come from a tracer's full list or a flight-recorder
    snapshot; order within the stream is the emission (time) order.
    """
    timelines: Dict[int, RequestTimeline] = {}
    open_service: Dict[int, float] = {}
    #: Per-worker sorted dispatch timestamps (epoll_wait batch returns).
    dispatches: Dict[int, List[float]] = {}

    def timeline(rid: int) -> RequestTimeline:
        entry = timelines.get(rid)
        if entry is None:
            entry = timelines[rid] = RequestTimeline(request=rid)
        return entry

    for event in events:
        name = event.name
        if name == EV_DISPATCH and event.worker is not None:
            dispatches.setdefault(event.worker, []).append(event.ts)
            continue
        rid = event.request
        if rid is None:
            continue
        if name == EV_ARRIVAL:
            entry = timeline(rid)
            entry.arrival = event.ts
            if event.conn is not None:
                entry.conn = event.conn
        elif name == EV_SERVICE:
            entry = timeline(rid)
            if event.worker is not None:
                entry.worker = event.worker
            if event.conn is not None:
                entry.conn = event.conn
            if event.phase == "B":
                open_service[rid] = event.ts
            elif event.phase == "E":
                begin = open_service.pop(rid, None)
                if begin is not None:
                    entry.segments.append((begin, event.ts))
        elif name == EV_COMPLETE:
            timeline(rid).completed = event.ts

    # Resolve each request's dispatch: the latest epoll_wait return on its
    # serving worker at or before its first service segment.
    for entry in timelines.values():
        if entry.worker is None or not entry.segments:
            continue
        stamps = dispatches.get(entry.worker)
        if not stamps:
            continue
        index = bisect_right(stamps, entry.segments[0][0])
        if index:
            entry.dispatch = stamps[index - 1]

    out = [entry for entry in timelines.values()
           if include_incomplete or entry.complete]
    out.sort(key=lambda entry: (entry.arrival if entry.arrival is not None
                                else float("inf"), entry.request))
    return out


def summarize_timelines(timelines: Iterable[RequestTimeline]) -> Dict[str, float]:
    """Mean critical-path components over completed requests (Fig. 5 row)."""
    complete = [t for t in timelines if t.complete]
    if not complete:
        return {"count": 0, "avg_latency": 0.0, "avg_kernel_wait": 0.0,
                "avg_queue_wait": 0.0, "avg_service": 0.0}
    n = len(complete)
    return {
        "count": n,
        "avg_latency": sum(t.latency for t in complete) / n,
        "avg_kernel_wait": sum(t.kernel_wait for t in complete) / n,
        "avg_queue_wait": sum(t.queue_wait for t in complete) / n,
        "avg_service": sum(t.service_time for t in complete) / n,
    }
