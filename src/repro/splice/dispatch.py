"""Charon-variant dispatch: load-aware weights, smooth weighted RR.

Charon (PAPERS.md) programs the dataplane with small integer weights
derived from backend load reports and spreads new connections with a
weighted round-robin.  We attach the same policy at the kernel's
``SO_ATTACH_REUSEPORT_EBPF`` hook (the :class:`SocketSelector` protocol):
weights are recomputed from live per-worker connection counts at most
every ``weight_refresh`` seconds — modelling the control-plane report
interval, so the program *can* be stale, e.g. it keeps routing to a
crashed-but-undetected worker — and the pick itself is nginx's smooth
weighted round-robin, which is deterministic (no RNG draws: golden-hash
safe) and interleaves choices instead of bursting.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

from ..kernel.reuseport import ReuseportContext
from .config import SpliceConfig

__all__ = ["CharonDispatchProgram"]


class CharonDispatchProgram:
    """Deterministic smooth-WRR selector with load-aware integer weights."""

    def __init__(self, workers: Sequence, clock: Callable[[], float],
                 config: SpliceConfig, tracer=None):
        self.workers = workers
        self.clock = clock
        self.config = config
        self.tracer = tracer
        n = len(workers)
        #: worker_id -> member-socket index in every port's group (bind
        #: order is worker order, and restart rebinds keep every port's
        #: group history identical, so one index serves all ports).
        self._sock_index: List[int] = list(range(n))
        #: Quantized load-aware weights (the dataplane's view).
        self.weights: List[int] = [1] * n
        #: Smooth-WRR running preference per worker.
        self._current: List[int] = [0] * n
        self._last_refresh = float("-inf")
        # -- statistics ---------------------------------------------------
        self.selections = 0
        self.refreshes = 0

    def repoint(self, worker_id: int, sock_index: int) -> None:
        """A restarted worker bound a fresh socket: update its slot."""
        self._sock_index[worker_id] = sock_index

    def _refresh_weights(self, now: float) -> None:
        """Recompute weights from reported load (connection counts).

        Inverse-load weighting: the least-loaded worker gets
        ``max_weight``; the most-loaded gets the floor weight 1.  Uses
        only what a control plane would report — no liveness peeking, so
        a dead worker keeps receiving flows until its load report ages
        the weight down or failure detection tombstones its socket.
        """
        loads = [len(w.conns) for w in self.workers]
        ceiling = max(loads) + 1
        raw = [ceiling - load for load in loads]
        top = max(raw)
        self.weights = [max(1, round(r * self.config.max_weight / top))
                        for r in raw]
        self._last_refresh = now
        self.refreshes += 1

    def run(self, ctx: ReuseportContext):
        """``SocketSelector`` hook: pick a member-socket index."""
        now = self.clock()
        if now - self._last_refresh >= self.config.weight_refresh:
            self._refresh_weights(now)
        # Nginx's smooth weighted round-robin: bump every candidate by its
        # weight, take the max, then pull the winner back by the total.
        current, weights = self._current, self.weights
        total = 0
        best = 0
        for i, w in enumerate(weights):
            current[i] += w
            total += w
            if current[i] > current[best]:
                best = i
        current[best] -= total
        self.selections += 1
        if self.tracer is not None:
            self.tracer.instant("splice.dispatch", "splice", worker=best,
                                weight=weights[best])
        return self._sock_index[best]

    def stats(self) -> dict:
        return {"selections": self.selections,
                "refreshes": self.refreshes,
                "weights": list(self.weights)}
