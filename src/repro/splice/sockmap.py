"""A capacity-limited SOCKMAP model.

XLB pins spliced flows in a ``BPF_MAP_TYPE_SOCKHASH``; the map's size is
fixed at load time, so a proxy can only keep that many flows on the
kernel path — the rest fall back to the userspace datapath.  We model
exactly that contract: bounded inserts keyed by connection id, with
counters the invariant monitor and ``repro list`` stats read.
"""

from __future__ import annotations

from typing import Dict

__all__ = ["SockMap"]


class SockMap:
    """Connection-id -> worker-id map with a hard capacity."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("sockmap capacity must be >= 1")
        self.capacity = capacity
        self._entries: Dict[int, int] = {}
        self.installs = 0
        self.removals = 0
        self.capacity_misses = 0
        self.peak_occupancy = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, conn_id: int) -> bool:
        return conn_id in self._entries

    def install(self, conn_id: int, worker_id: int) -> bool:
        """Insert an entry; False (a capacity miss) when the map is full."""
        if conn_id in self._entries:
            raise ValueError(f"conn {conn_id} already spliced")
        if len(self._entries) >= self.capacity:
            self.capacity_misses += 1
            return False
        self._entries[conn_id] = worker_id
        self.installs += 1
        if len(self._entries) > self.peak_occupancy:
            self.peak_occupancy = len(self._entries)
        return True

    def remove(self, conn_id: int) -> None:
        if conn_id in self._entries:
            del self._entries[conn_id]
            self.removals += 1

    def owner(self, conn_id: int) -> int:
        return self._entries[conn_id]

    def stats(self) -> dict:
        return {"occupancy": len(self._entries),
                "capacity": self.capacity,
                "installs": self.installs,
                "removals": self.removals,
                "capacity_misses": self.capacity_misses,
                "peak_occupancy": self.peak_occupancy}
