"""repro.splice — XLB-style in-kernel interposition datapath.

The fourth architecture in the repo's head-to-head, and the antithesis of
Hermes's: where HERMES makes the epoll wakeup *smarter* (userspace-directed
notification), XLB (PAPERS.md) removes the wakeup entirely — after the L7
handshake/parse the proxy pins the flow in a SOCKMAP and the kernel
forwards payloads between the two sockets (sk_msg redirect), skipping the
userspace copy and the worker wakeup.  The trade: a per-flow splice
setup/teardown cost, a finite SOCKMAP, and a dispatch policy that can only
use control-plane load reports (Charon-style quantized weights) instead of
Hermes's exact shared-memory state.

Wiring mirrors Hermes/Prequal: per-worker reuseport sockets plus a
dispatch program attached at every port's ``SO_ATTACH_REUSEPORT_EBPF``
hook; the splice engine adds one kernel forwarding lane per worker core.
The ``splice_crossover`` experiment sweeps request size x connection
lifetime to map where each datapath wins.
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import SpliceConfig, config_from_overrides
from .dispatch import CharonDispatchProgram
from .engine import SpliceEngine, SpliceLane, SplicePath
from .sockmap import SockMap

__all__ = [
    "SpliceConfig", "config_from_overrides",
    "SockMap", "SpliceEngine", "SpliceLane", "SplicePath",
    "CharonDispatchProgram", "SpliceState", "build_splice",
]


@dataclass
class SpliceState:
    """Everything the SPLICE mode hangs off an :class:`LBServer`."""

    config: SpliceConfig
    sockmap: SockMap
    engine: SpliceEngine
    program: CharonDispatchProgram

    def stats(self) -> dict:
        """One flat dict for run summaries and ``repro list``."""
        flat = dict(self.engine.stats())
        for key, value in self.sockmap.stats().items():
            flat[f"sockmap_{key}"] = value
        for key, value in self.program.stats().items():
            flat[f"dispatch_{key}"] = value
        return flat


def build_splice(env, server, config: SpliceConfig,
                 tracer=None) -> SpliceState:
    """Assemble the SPLICE subsystem for one LB device.

    Deterministic by construction: the Charon program draws no RNG (smooth
    WRR) and the engine schedules only closure callbacks on the sim clock,
    so a SPLICE run is byte-identical across schedulers and process shards
    like every other mode.
    """
    sockmap = SockMap(config.sockmap_capacity)
    engine = SpliceEngine(env, server.metrics, sockmap, config,
                          tracer=tracer)
    program = CharonDispatchProgram(server.workers, clock=lambda: env.now,
                                    config=config, tracer=tracer)
    return SpliceState(config=config, sockmap=sockmap, engine=engine,
                       program=program)
