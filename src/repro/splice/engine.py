"""The kernel-side forwarding engine for spliced flows.

Once a worker splices a flow (after the L7 handshake/parse), its payload
never crosses into userspace again: request data is forwarded by the
kernel on the owning worker's core — XLB's sk_msg redirect — with a cost
model of its own (fixed per-request verdict cost plus a per-byte in-kernel
copy far below the userspace read+parse+write cost) and, crucially, **no
epoll wakeup**.  Each worker core gets one forwarding *lane*: a FIFO whose
busy time models softirq CPU on that core, independent of the worker
process — a hung or crashed-but-undetected worker keeps forwarding, which
is exactly the resilience asymmetry the splice-vs-hermes comparison is
about.

The engine keeps an exact request/byte conservation ledger
(``in == forwarded + dropped + in_flight``) that
:class:`repro.check.InvariantMonitor` audits while a run is live.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

from ..kernel.tcp import Connection, ConnState, Request
from .config import SpliceConfig
from .sockmap import SockMap

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..lb.metrics import DeviceMetrics
    from ..lb.worker import Worker
    from ..sim.engine import Environment

__all__ = ["SpliceEngine", "SplicePath", "SpliceLane"]


class SpliceLane:
    """One core's kernel forwarding FIFO (softirq time on that core)."""

    __slots__ = ("worker_id", "busy_until", "busy_seconds",
                 "requests_forwarded")

    def __init__(self, worker_id: int):
        self.worker_id = worker_id
        self.busy_until = 0.0
        self.busy_seconds = 0.0
        self.requests_forwarded = 0


class SplicePath:
    """Kernel-side ownership of one spliced flow.

    Installed as ``Connection.splice``; the kernel layer routes delivery,
    FIN and RST through it instead of the fd's epoll wake chain.
    """

    __slots__ = ("engine", "conn", "worker", "in_flight", "aborted",
                 "closing")

    def __init__(self, engine: "SpliceEngine", conn: Connection,
                 worker: "Worker"):
        self.engine = engine
        self.conn = conn
        self.worker = worker
        #: Requests accepted onto the lane but not yet forwarded.
        self.in_flight = 0
        #: Detached (reset / adopted elsewhere): late lane completions drop.
        self.aborted = False
        #: Teardown already scheduled on the lane.
        self.closing = False

    # -- hooks the kernel layer calls ------------------------------------
    def on_deliver(self, request: Request) -> None:
        self.engine.forward(self, request)

    def on_client_close(self) -> None:
        # ``conn.fin_pending`` is already set; tear down once drained.
        if self.in_flight == 0 and not self.closing:
            self.engine.begin_teardown(self)

    def on_reset(self) -> None:
        self.engine.abort(self)


class SpliceEngine:
    """Forwards spliced payloads kernel-side, one lane per worker core."""

    def __init__(self, env: "Environment", device: "DeviceMetrics",
                 sockmap: SockMap, config: SpliceConfig, tracer=None):
        self.env = env
        self.device = device
        self.sockmap = sockmap
        self.config = config
        self.tracer = tracer
        self._lanes: Dict[int, SpliceLane] = {}
        # -- flow counters ------------------------------------------------
        self.flows_spliced = 0
        self.flows_torn_down = 0
        self.flows_aborted = 0
        # -- the conservation ledger ---------------------------------------
        self.requests_in = 0
        self.requests_forwarded = 0
        self.requests_dropped = 0
        self.requests_in_flight = 0
        self.bytes_in = 0
        self.bytes_forwarded = 0
        self.bytes_dropped = 0
        self.bytes_in_flight = 0

    def _lane(self, worker_id: int) -> SpliceLane:
        lane = self._lanes.get(worker_id)
        if lane is None:
            lane = SpliceLane(worker_id)
            self._lanes[worker_id] = lane
        return lane

    # -- splice install (runs on the worker's core) ------------------------
    def splice_flow(self, conn: Connection, worker: "Worker"):
        """Generator: attempt to splice ``conn``; charges the worker.

        Called from the worker's event loop at a request boundary.  The
        SOCKMAP capacity check is free (a map lookup); only a viable
        install pays ``setup_cost``.  The flow stays on the userspace path
        when the map is full — the capacity miss is counted.
        """
        if len(self.sockmap) >= self.sockmap.capacity:
            self.sockmap.capacity_misses += 1
            return
        yield from worker._busy(self.config.setup_cost)
        # Re-check after the setup delay: a FIN or RST may have raced in,
        # in which case the worker's normal close path owns the flow.
        if (conn.state is not ConnState.ACCEPTED or conn.fin_pending
                or conn.splice is not None):
            return
        if not self.sockmap.install(conn.id, worker.worker_id):
            return  # lost the last slot during setup; stays userspace
        conn.splice = SplicePath(self, conn, worker)
        self.flows_spliced += 1
        worker.metrics.flows_spliced += 1
        # The kernel owns the flow now: the worker stops polling it.  This
        # is the whole point — payload events no longer wake the worker.
        if conn.fd is not None and worker.epoll.watches(conn.fd):
            worker.epoll.ctl_del(conn.fd)
        if self.tracer is not None:
            self.tracer.instant("splice.install", "splice",
                                worker=worker.worker_id, conn=conn.id)

    # -- data path -----------------------------------------------------------
    def forward(self, path: SplicePath, request: Request) -> None:
        """Queue one request on the owning core's kernel lane."""
        size = request.size_bytes
        self.requests_in += 1
        self.bytes_in += size
        cost = (self.config.per_request_cost
                + size * self.config.per_byte_cost)
        lane = self._lane(path.worker.worker_id)
        now = self.env.now
        start = lane.busy_until if lane.busy_until > now else now
        finish = start + cost
        lane.busy_until = finish
        lane.busy_seconds += cost
        path.in_flight += 1
        self.requests_in_flight += 1
        self.bytes_in_flight += size
        self.env.schedule_callback(
            finish - now, lambda: self._complete(path, request))

    def _complete(self, path: SplicePath, request: Request) -> None:
        size = request.size_bytes
        path.in_flight -= 1
        self.requests_in_flight -= 1
        self.bytes_in_flight -= size
        conn = path.conn
        if path.aborted or conn.state is not ConnState.ACCEPTED:
            # The flow died (reset at failure detection, adoption) while
            # this request sat on the lane: the bytes are dropped.  The
            # connection-level failure was already recorded by whoever
            # reset the flow, so no extra failure count here.
            self.requests_dropped += 1
            self.bytes_dropped += size
            return
        request.next_event = request.n_events
        request.completed_time = self.env.now
        if request in conn.inbox:
            conn.inbox.remove(request)
        conn.requests_completed += 1
        lane = self._lane(path.worker.worker_id)
        lane.requests_forwarded += 1
        self.requests_forwarded += 1
        self.bytes_forwarded += size
        self.device.requests_spliced += 1
        if self.tracer is not None:
            rid = self.tracer.request_id(request)
            self.tracer.instant("request.complete", "splice",
                                worker=path.worker.worker_id, conn=conn.id,
                                request=rid, latency=request.latency)
        if request.tenant_id >= 0:
            self.device.record_request(request.latency,
                                       path.worker.worker_id,
                                       tenant_id=request.tenant_id)
        if request.on_complete is not None:
            request.on_complete(request)
        if conn.fin_pending and path.in_flight == 0 and not path.closing:
            self.begin_teardown(path)

    # -- teardown ------------------------------------------------------------
    def begin_teardown(self, path: SplicePath) -> None:
        """FIN observed and the lane is drained: unsplice kernel-side."""
        path.closing = True
        lane = self._lane(path.worker.worker_id)
        now = self.env.now
        start = lane.busy_until if lane.busy_until > now else now
        finish = start + self.config.teardown_cost
        lane.busy_until = finish
        lane.busy_seconds += self.config.teardown_cost
        self.env.schedule_callback(
            finish - now, lambda: self._finish_teardown(path))

    def _finish_teardown(self, path: SplicePath) -> None:
        conn = path.conn
        if path.aborted or conn.state is not ConnState.ACCEPTED:
            return  # reset raced the teardown; abort already cleaned up
        path.aborted = True
        self.sockmap.remove(conn.id)
        worker = path.worker
        fd = conn.fd
        conn.splice = None
        conn.mark_closed(self.env.now)
        if fd is not None and fd in worker.conns:
            del worker.conns[fd]
            worker.metrics.closed += 1
            worker.metrics.connections.decrement()
            worker._update_accept_interest()
        self.flows_torn_down += 1
        if self.tracer is not None:
            self.tracer.instant("conn.close", "splice",
                                worker=worker.worker_id, conn=conn.id,
                                failed=False)

    def abort(self, path: SplicePath) -> None:
        """Detach a flow (RST / failure detection / fleet adoption):
        in-flight lane work drains into the dropped ledger."""
        if path.aborted:
            return
        path.aborted = True
        self.sockmap.remove(path.conn.id)
        self.flows_aborted += 1

    # -- auditing ------------------------------------------------------------
    def conserved(self) -> bool:
        """The splice ledger balances (checked live by ``repro.check``)."""
        return (self.requests_in == (self.requests_forwarded
                                     + self.requests_dropped
                                     + self.requests_in_flight)
                and self.bytes_in == (self.bytes_forwarded
                                      + self.bytes_dropped
                                      + self.bytes_in_flight)
                and self.requests_in_flight >= 0
                and self.bytes_in_flight >= 0)

    def kernel_busy_seconds(self) -> float:
        """Total softirq CPU consumed by forwarding, across all lanes."""
        return sum(lane.busy_seconds for lane in self._lanes.values())

    def stats(self) -> dict:
        return {
            "flows_spliced": self.flows_spliced,
            "flows_torn_down": self.flows_torn_down,
            "flows_aborted": self.flows_aborted,
            "requests_in": self.requests_in,
            "requests_forwarded": self.requests_forwarded,
            "requests_dropped": self.requests_dropped,
            "requests_in_flight": self.requests_in_flight,
            "bytes_in": self.bytes_in,
            "bytes_forwarded": self.bytes_forwarded,
            "bytes_dropped": self.bytes_dropped,
            "bytes_in_flight": self.bytes_in_flight,
            "kernel_busy_seconds": self.kernel_busy_seconds(),
        }
