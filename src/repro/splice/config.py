"""Tunables of the in-kernel interposition (splice) datapath.

The cost model follows XLB's measurements (PAPERS.md): once a flow is
spliced via SOCKMAP, forwarding a payload costs a small fixed sk_msg
redirect overhead plus a per-byte kernel-copy cost that is far below the
userspace read+parse+write cost — but installing the splice costs two BPF
map updates plus an epoll detach, and the SOCKMAP has finite capacity.
Magnitudes are anchored to the calibration constants in
:class:`~repro.core.config.OverheadCosts` (map update ~1.5 us, eBPF
program dispatch ~100 ns).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Mapping

from ..core import tunables as _tunables

__all__ = ["SpliceConfig", "config_from_overrides"]


@dataclass(frozen=True)
class SpliceConfig:
    """Tunables of the XLB-style SOCKMAP splice datapath."""

    #: Requests a worker parses in userspace before splicing the flow (the
    #: L7 handshake/parse phase; XLB splices after routing is decided).
    splice_after: int = 1
    #: Worker CPU to install the splice: two SOCKMAP updates (client and
    #: backend sides) plus removing the fd from epoll.
    setup_cost: float = 4e-6
    #: Kernel CPU to tear the splice down at FIN (map deletes + close).
    teardown_cost: float = 2e-6
    #: Fixed kernel CPU per forwarded request (sk_msg verdict + redirect).
    per_request_cost: float = 1e-6
    #: Kernel CPU per forwarded byte (in-kernel copy, no userspace crossing).
    #: Far below a userspace proxy's per-byte read+write cost.
    per_byte_cost: float = 1e-9
    #: SOCKMAP capacity: flows beyond this stay on the userspace path.
    sockmap_capacity: int = 1024
    #: Charon weight refresh period: the dispatch program recomputes its
    #: load-aware weights from per-worker connection counts at most this
    #: often (models the control-plane report interval).
    weight_refresh: float = 0.01
    #: Integer weight ceiling for the smooth weighted-round-robin picker
    #: (Charon carries quantized weights in the dataplane).
    max_weight: int = 16

    def __post_init__(self):
        if self.splice_after < 1:
            raise ValueError("splice_after must be >= 1")
        if self.setup_cost < 0:
            raise ValueError("setup_cost must be >= 0")
        if self.teardown_cost < 0:
            raise ValueError("teardown_cost must be >= 0")
        if self.per_request_cost < 0:
            raise ValueError("per_request_cost must be >= 0")
        if self.per_byte_cost < 0:
            raise ValueError("per_byte_cost must be >= 0")
        if self.sockmap_capacity < 1:
            raise ValueError("sockmap_capacity must be >= 1")
        if self.weight_refresh <= 0:
            raise ValueError("weight_refresh must be positive")
        if self.max_weight < 1:
            raise ValueError("max_weight must be >= 1")

    def with_overrides(self, **kwargs) -> "SpliceConfig":
        """A copy with some fields replaced (sweep helper)."""
        return replace(self, **kwargs)

    def tunables(self) -> dict:
        """Field -> value, for ``repro list`` metadata and run summaries."""
        return _tunables.tunable_values(self)


def config_from_overrides(overrides: Mapping[str, Any]) -> SpliceConfig:
    """Build a config from ``--set KEY=VALUE`` pairs, rejecting unknowns."""
    return _tunables.config_from_overrides(SpliceConfig, overrides,
                                           label="splice")
