"""Discrete-event simulation engine.

A small, dependency-free coroutine kernel in the style of SimPy.  Processes
are Python generators that ``yield`` events; the environment advances a
virtual clock from event to event.  Determinism is guaranteed: events
scheduled for the same timestamp fire in (priority, insertion order).

The engine is the substrate every simulated component (kernel wait queues,
epoll instances, L7 workers, traffic generators) runs on.  It is deliberately
minimal — only the primitives the load-balancer model needs:

- :class:`Environment` — clock + event heap + ``run()``.
- :class:`Event` — one-shot triggerable value/error carrier.
- :class:`Timeout` — an event that fires after a delay.
- :class:`Process` — a running generator; itself an event that fires when
  the generator returns; supports :meth:`Process.interrupt`.
- :class:`AnyOf` / :class:`AllOf` — condition events.

Example
-------
>>> env = Environment()
>>> def hello(env):
...     yield env.timeout(5)
...     return env.now
>>> proc = env.process(hello(env))
>>> env.run()
>>> proc.value
5
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "AnyOf",
    "AllOf",
    "SimulationError",
]

#: Priority for "urgent" events (fire before normal events at the same time).
URGENT = 0
#: Priority for ordinary events.
NORMAL = 1


class SimulationError(Exception):
    """Raised for misuse of the simulation API."""


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot event that processes can wait on.

    An event starts *pending*, becomes *triggered* when scheduled, and
    *processed* once its callbacks have run.  It carries either a value
    (``succeed``) or an exception (``fail``).
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_processed", "_scheduled")

    #: Sentinel for "no value yet".
    PENDING = object()

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list] = []
        self._value: Any = Event.PENDING
        self._ok: bool = True
        self._processed = False
        self._scheduled = False

    # -- state inspection ------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._value is not Event.PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been executed."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value; raises if still pending."""
        if self._value is Event.PENDING:
            raise SimulationError("event value is not yet available")
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not Event.PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self, NORMAL)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        The exception is re-raised in every waiting process.
        """
        if self._value is not Event.PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.env._schedule(self, NORMAL)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger with the state of another (triggered) event."""
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)

    # -- composition -----------------------------------------------------
    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.env, [self, other])

    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.env, [self, other])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self._processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env._schedule(self, NORMAL, delay)


class Initialize(Event):
    """Internal: kick-starts a freshly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        super().__init__(env)
        self.callbacks.append(process._resume)
        self._ok = True
        self._value = None
        env._schedule(self, URGENT)


class Process(Event):
    """A running generator-based process.

    A ``Process`` is itself an event: it triggers when the generator
    returns (with the return value) or raises (with the exception).
    """

    __slots__ = ("generator", "_target", "name")

    def __init__(self, env: "Environment", generator: Generator,
                 name: Optional[str] = None):
        if not hasattr(generator, "throw"):
            raise SimulationError(f"{generator!r} is not a generator")
        super().__init__(env)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Optional[Event] = None
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._value is Event.PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process.

        Interrupting a dead process, or a process from within itself,
        is an error.
        """
        if not self.is_alive:
            raise SimulationError(f"{self.name} has terminated; cannot interrupt")
        if self is self.env.active_process:
            raise SimulationError("a process cannot interrupt itself")
        # Deliver via an urgent event so interrupt wins races at equal time.
        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        event.callbacks.append(self._resume)
        self.env._schedule(event, URGENT)
        # Detach from the event the process was waiting on.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None

    # -- scheduling core ---------------------------------------------------
    def _resume(self, event: Event) -> None:
        if not self.is_alive:
            # A stale wakeup (e.g. an interrupt racing process completion
            # at the same timestamp) must not touch a finished generator.
            return
        env = self.env
        env._active_process = self
        while True:
            if event._ok:
                try:
                    target = self.generator.send(event._value)
                except StopIteration as exc:
                    self._finalize(True, exc.value)
                    break
                except BaseException as exc:
                    self._finalize(False, exc)
                    break
            else:
                # Propagate the failure (event error or interrupt) into the
                # generator; it may catch it and keep running.
                try:
                    target = self.generator.throw(event._value)
                except StopIteration as stop:
                    self._finalize(True, stop.value)
                    break
                except BaseException as err:
                    self._finalize(False, err)
                    break

            if not isinstance(target, Event):
                exc = SimulationError(
                    f"process {self.name!r} yielded a non-event: {target!r}")
                try:
                    self.generator.throw(exc)
                except BaseException as err:
                    self._finalize(False, err)
                    break
                raise exc

            if target.env is not env:
                raise SimulationError(
                    "cannot wait on an event from another environment")

            if target._processed or (target.callbacks is None):
                # Already fired: continue immediately with its value.
                event = target
                continue
            target.callbacks.append(self._resume)
            self._target = target
            break
        env._active_process = None

    def _finalize(self, ok: bool, value: Any) -> None:
        self._ok = ok
        self._value = value
        self.env._schedule(self, NORMAL)


class _Condition(Event):
    """Base for AnyOf/AllOf composition events."""

    __slots__ = ("events", "_pending")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events = list(events)
        for event in self.events:
            if event.env is not env:
                raise SimulationError("all condition events must share an environment")
        self._pending = 0
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            if event.callbacks is None or event._processed:
                self._check(event)
            else:
                self._pending += 1
                event.callbacks.append(self._check)
        if self._value is Event.PENDING and self._pending == 0:
            # All already processed but condition not yet met (AllOf met it
            # inside _check; AnyOf with zero events handled above).
            self._evaluate(final=True)

    # Subclasses decide when the condition is satisfied.
    def _satisfied(self, done: int, total: int) -> bool:
        raise NotImplementedError

    def _check(self, event: Event) -> None:
        if self._value is not Event.PENDING:
            return
        if not event._ok:
            self.fail(event._value)
            return
        done = sum(1 for ev in self.events if ev._processed and ev._ok)
        if self._satisfied(done, len(self.events)):
            self.succeed(self._collect())

    def _evaluate(self, final: bool = False) -> None:
        done = sum(1 for ev in self.events if ev._processed and ev._ok)
        if self._satisfied(done, len(self.events)):
            self.succeed(self._collect())
        elif final:
            raise SimulationError("condition can never be satisfied")

    def _collect(self) -> dict:
        """Values of sub-events that have fired, in declaration order."""
        return {ev: ev._value for ev in self.events if ev._processed and ev._ok}


class AnyOf(_Condition):
    """Fires when any sub-event has fired."""

    __slots__ = ()

    def _satisfied(self, done: int, total: int) -> bool:
        return done >= 1


class AllOf(_Condition):
    """Fires when all sub-events have fired."""

    __slots__ = ()

    def _satisfied(self, done: int, total: int) -> bool:
        return done >= total


class Environment:
    """The simulation environment: virtual clock and event queue."""

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list = []
        self._eid = count()
        self._active_process: Optional[Process] = None

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    # -- event factories ---------------------------------------------------
    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: Optional[str] = None) -> Process:
        """Start a new process from ``generator``."""
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- scheduling ----------------------------------------------------------
    def _schedule(self, event: Event, priority: int, delay: float = 0.0) -> None:
        if event._scheduled:
            return
        event._scheduled = True
        heapq.heappush(self._queue,
                       (self._now + delay, priority, next(self._eid), event))

    def schedule_callback(self, delay: float, fn: Callable[[], None]) -> Event:
        """Run a plain callable after ``delay`` (no process needed)."""
        event = self.timeout(delay)
        event.callbacks.append(lambda _ev: fn())
        return event

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the next scheduled event."""
        if not self._queue:
            raise SimulationError("no more events")
        when, _prio, _eid, event = heapq.heappop(self._queue)
        self._now = when
        callbacks = event.callbacks
        event.callbacks = None
        event._processed = True
        for callback in callbacks:
            callback(event)

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or the clock reaches ``until``.

        When ``until`` is given the clock is advanced exactly to it even if
        the queue drains earlier, so post-run measurements see a consistent
        horizon.
        """
        if until is None:
            while self._queue:
                self.step()
            return
        limit = float(until)
        if limit < self._now:
            raise SimulationError(
                f"cannot run backwards: now={self._now}, until={limit}")
        while self._queue and self._queue[0][0] <= limit:
            self.step()
        self._now = limit
