"""Discrete-event simulation engine.

A small, dependency-free coroutine kernel in the style of SimPy.  Processes
are Python generators that ``yield`` events; the environment advances a
virtual clock from event to event.  Determinism is guaranteed: events
scheduled for the same timestamp fire in (priority, insertion order).

The engine is the substrate every simulated component (kernel wait queues,
epoll instances, L7 workers, traffic generators) runs on.  It is deliberately
minimal — only the primitives the load-balancer model needs:

- :class:`Environment` — clock + event heap + ``run()``.
- :class:`Event` — one-shot triggerable value/error carrier.
- :class:`Timeout` — an event that fires after a delay.
- :class:`Process` — a running generator; itself an event that fires when
  the generator returns; supports :meth:`Process.interrupt`.
- :class:`AnyOf` / :class:`AllOf` — condition events.

Performance notes (the ``repro.perf`` fast path)
------------------------------------------------
The engine's per-event cost is the unit economics of every sweep in this
repo, so the hot path is hand-flattened:

- ``Environment.run`` inlines the pop/dispatch loop (no ``step()`` call,
  no repeated attribute loads per event).
- A process may ``yield delay`` (a plain float/int) instead of
  ``yield env.timeout(delay)``: the engine schedules the resume directly
  on the heap with the same (time, priority, insertion-order) key the
  equivalent ``Timeout`` would have used, but allocates no event object
  and runs no callback list.  The yield expression evaluates to ``None``,
  exactly like a value-less timeout.
- ``Environment.timeout``/``event`` inline the whole construct+schedule
  sequence and draw from per-class free lists.  A processed ``Event`` or
  ``Timeout`` is recycled back into its pool only when
  ``sys.getrefcount`` proves the dispatch loop holds the sole remaining
  reference, so user code that retains an event (``t = env.timeout(5);
  yield t; t.value``) keeps exactly the semantics it always had.
- Scheduling goes through one flat sequence (eid bump + ``heappush``);
  ``Event.succeed``/``fail``/``Timeout.__init__`` perform it inline
  instead of chaining through ``_schedule``.
- ``AnyOf``/``AllOf`` maintain an incremental done-counter instead of
  recounting every sub-event per trigger (O(n) total, was O(n²)).
- ``schedule_callback`` allocates no per-event closure: the callable is
  carried on a slot of the event and invoked by one shared function.

None of this changes observable behaviour: event ordering (time, priority,
insertion order), RNG draws, and error semantics are bit-identical to the
straightforward implementation — pinned by the golden-hash determinism
tests in ``tests/test_determinism_golden.py``.

Example
-------
>>> env = Environment()
>>> def hello(env):
...     yield env.timeout(5)
...     return env.now
>>> proc = env.process(hello(env))
>>> env.run()
>>> proc.value
5
"""

from __future__ import annotations

import sys
from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "AnyOf",
    "AllOf",
    "SimulationError",
]

#: Priority for "urgent" events (fire before normal events at the same time).
URGENT = 0
#: Priority for ordinary events.
NORMAL = 1

#: Free-list capacity per event class (beyond this, objects fall to the GC).
_POOL_LIMIT = 1024


class SimulationError(Exception):
    """Raised for misuse of the simulation API."""


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot event that processes can wait on.

    An event starts *pending*, becomes *triggered* when scheduled, and
    *processed* once its callbacks have run.  It carries either a value
    (``succeed``) or an exception (``fail``).
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_processed", "_scheduled")

    #: Sentinel for "no value yet".
    PENDING = object()

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list] = []
        self._value: Any = _PENDING
        self._ok: bool = True
        self._processed = False
        self._scheduled = False

    # -- state inspection ------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been executed."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value; raises if still pending."""
        if self._value is _PENDING:
            raise SimulationError("event value is not yet available")
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        env = self.env
        eid = env._eid
        env._eid = eid + 1
        heappush(env._queue, (env._now, NORMAL, eid, self))
        self._scheduled = True
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        The exception is re-raised in every waiting process.
        """
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        env = self.env
        eid = env._eid
        env._eid = eid + 1
        heappush(env._queue, (env._now, NORMAL, eid, self))
        self._scheduled = True
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger with the state of another (triggered) event."""
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)

    # -- composition -----------------------------------------------------
    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.env, [self, other])

    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.env, [self, other])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self._processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


_PENDING = Event.PENDING

# Shared "your timer fired" event handed to Process._resume by the direct
# timer fast path.  It is permanently ok/None — exactly what a value-less
# Timeout would deliver — so one immortal instance serves every fire.
_TICK = object.__new__(Event)
_TICK.env = None
_TICK.callbacks = None
_TICK._value = None
_TICK._ok = True
_TICK._processed = True
_TICK._scheduled = True


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        # Flat init: every slot set exactly once, scheduling inlined (no
        # super().__init__ that first writes PENDING just to overwrite it,
        # no _schedule hop).
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._processed = False
        self._scheduled = True
        self.delay = delay
        eid = env._eid
        env._eid = eid + 1
        heappush(env._queue, (env._now + delay, NORMAL, eid, self))


def _invoke_callback(event: "Event") -> None:
    """Shared trampoline for :meth:`Environment.schedule_callback` events."""
    event.fn()


class _Callback(Timeout):
    """A timeout carrying a plain callable on a slot (no closure per event)."""

    __slots__ = ("fn",)

    def __init__(self, env: "Environment", delay: float,
                 fn: Callable[[], None]):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        self.env = env
        self.callbacks = [_invoke_callback]
        self._value = None
        self._ok = True
        self._processed = False
        self._scheduled = True
        self.delay = delay
        self.fn = fn
        eid = env._eid
        env._eid = eid + 1
        heappush(env._queue, (env._now + delay, NORMAL, eid, self))


class Initialize(Event):
    """Internal: kick-starts a freshly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        self.env = env
        self.callbacks = [process._resumer]
        self._value = None
        self._ok = True
        self._processed = False
        self._scheduled = True
        eid = env._eid
        env._eid = eid + 1
        heappush(env._queue, (env._now, URGENT, eid, self))


class Process(Event):
    """A running generator-based process.

    A ``Process`` is itself an event: it triggers when the generator
    returns (with the return value) or raises (with the exception).
    """

    __slots__ = ("generator", "_target", "name", "_resumer", "_sched_eid")

    def __init__(self, env: "Environment", generator: Generator,
                 name: Optional[str] = None):
        if not hasattr(generator, "throw"):
            raise SimulationError(f"{generator!r} is not a generator")
        super().__init__(env)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Optional[Event] = None
        #: The one bound-method object used for every callback registration
        #: (a fresh ``self._resume`` per suspend would allocate each time).
        self._resumer = self._resume
        #: eid of this process's own live heap entry (a ``yield delay``
        #: direct timer, or the completion entry pushed by ``_finalize``).
        #: Any popped entry whose eid differs is stale and is skipped.
        self._sched_eid = -1
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._value is _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process.

        Interrupting a dead process, or a process from within itself,
        is an error.
        """
        if not self.is_alive:
            raise SimulationError(f"{self.name} has terminated; cannot interrupt")
        if self is self.env.active_process:
            raise SimulationError("a process cannot interrupt itself")
        # Deliver via an urgent event so interrupt wins races at equal time.
        env = self.env
        event = env.event()
        event._ok = False
        event._value = Interrupt(cause)
        event.callbacks.append(self._resumer)
        eid = env._eid
        env._eid = eid + 1
        heappush(env._queue, (env._now, URGENT, eid, event))
        event._scheduled = True
        # Detach from the event the process was waiting on.  A direct
        # ``yield delay`` timer has no event to detach from: invalidating
        # _sched_eid turns its heap entry stale, and the dispatch loop
        # discards stale Process entries on pop.
        self._sched_eid = -1
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resumer)
            except ValueError:
                pass
        self._target = None

    # -- scheduling core ---------------------------------------------------
    def _resume(self, event: Event) -> None:
        if self._value is not _PENDING:
            # A stale wakeup (e.g. an interrupt racing process completion
            # at the same timestamp) must not touch a finished generator.
            return
        env = self.env
        env._active_process = self
        self._target = None
        generator = self.generator
        if event._ok:
            try:
                target = generator.send(event._value)
            except StopIteration as exc:
                self._finalize(True, exc.value)
                env._active_process = None
                return
            except BaseException as exc:
                self._finalize(False, exc)
                env._active_process = None
                return
        else:
            # Propagate the failure (event error or interrupt) into the
            # generator; it may catch it and keep running.
            try:
                target = generator.throw(event._value)
            except StopIteration as stop:
                self._finalize(True, stop.value)
                env._active_process = None
                return
            except BaseException as err:
                self._finalize(False, err)
                env._active_process = None
                return
        cls = target.__class__
        if (cls is float or cls is int) and target >= 0:
            # Direct timer fast path: ``yield delay`` schedules the resume
            # itself — same (time, priority, eid) key a Timeout would get,
            # but no event object, no callback list.
            eid = env._eid
            env._eid = eid + 1
            heappush(env._queue, (env._now + target, NORMAL, eid, self))
            self._sched_eid = eid
            env._active_process = None
            return
        self._continue(target)
        env._active_process = None

    def _continue(self, target: Any) -> None:
        """Suspend on a yielded target (the non-direct-timer cases).

        Loops while targets are already fired, stepping the generator with
        their values; returns once the process is suspended (callback
        registered or direct timer scheduled) or finished.  The caller owns
        ``env._active_process``.
        """
        env = self.env
        generator = self.generator
        while True:
            cls = target.__class__
            if cls is float or cls is int:
                if target >= 0:
                    eid = env._eid
                    env._eid = eid + 1
                    heappush(env._queue,
                             (env._now + target, NORMAL, eid, self))
                    self._sched_eid = eid
                    return
                exc = SimulationError(f"negative timeout delay: {target}")
                try:
                    generator.throw(exc)
                except BaseException as err:
                    self._finalize(False, err)
                    return
                raise exc

            if not isinstance(target, Event):
                exc = SimulationError(
                    f"process {self.name!r} yielded a non-event: {target!r}")
                try:
                    generator.throw(exc)
                except BaseException as err:
                    self._finalize(False, err)
                    return
                raise exc

            if target.env is not env:
                raise SimulationError(
                    "cannot wait on an event from another environment")

            callbacks = target.callbacks
            if not target._processed and callbacks is not None:
                callbacks.append(self._resumer)
                self._target = target
                return

            # Already fired: continue immediately with its value.
            if target._ok:
                try:
                    target = generator.send(target._value)
                except StopIteration as exc:
                    self._finalize(True, exc.value)
                    return
                except BaseException as exc:
                    self._finalize(False, exc)
                    return
            else:
                try:
                    target = generator.throw(target._value)
                except StopIteration as stop:
                    self._finalize(True, stop.value)
                    return
                except BaseException as err:
                    self._finalize(False, err)
                    return

    def _finalize(self, ok: bool, value: Any) -> None:
        self._ok = ok
        self._value = value
        env = self.env
        eid = env._eid
        env._eid = eid + 1
        heappush(env._queue, (env._now, NORMAL, eid, self))
        self._sched_eid = eid
        self._scheduled = True


class _Condition(Event):
    """Base for AnyOf/AllOf composition events."""

    __slots__ = ("events", "_pending", "_done", "_checker")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events = list(events)
        for event in self.events:
            if event.env is not env:
                raise SimulationError("all condition events must share an environment")
        self._pending = 0
        #: Sub-events seen done (processed + ok) so far — incremented by
        #: ``_check`` instead of recounting the whole list per trigger.
        self._done = 0
        if not self.events:
            self.succeed({})
            return
        checker = self._checker = self._check
        for event in self.events:
            if event.callbacks is None or event._processed:
                checker(event)
            else:
                self._pending += 1
                event.callbacks.append(checker)
        if self._value is _PENDING and self._pending == 0:
            # All already processed but condition not yet met (AllOf met it
            # inside _check; AnyOf with zero events handled above).
            self._evaluate(final=True)

    # Subclasses decide when the condition is satisfied.
    def _satisfied(self, done: int, total: int) -> bool:
        raise NotImplementedError

    def _check(self, event: Event) -> None:
        if self._value is not _PENDING:
            return
        if not event._ok:
            self.fail(event._value)
            return
        done = self._done + 1
        self._done = done
        if self._satisfied(done, len(self.events)):
            self.succeed(self._collect())

    def _evaluate(self, final: bool = False) -> None:
        if self._satisfied(self._done, len(self.events)):
            self.succeed(self._collect())
        elif final:
            raise SimulationError("condition can never be satisfied")

    def _collect(self) -> dict:
        """Values of sub-events that have fired, in declaration order."""
        return {ev: ev._value for ev in self.events if ev._processed and ev._ok}


class AnyOf(_Condition):
    """Fires when any sub-event has fired."""

    __slots__ = ()

    def _satisfied(self, done: int, total: int) -> bool:
        return done >= 1


class AllOf(_Condition):
    """Fires when all sub-events have fired."""

    __slots__ = ()

    def _satisfied(self, done: int, total: int) -> bool:
        return done >= total


class Environment:
    """The simulation environment: virtual clock and event queue."""

    __slots__ = ("_now", "_queue", "_eid", "_active_process", "steps",
                 "_event_pool", "_timeout_pool")

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list = []
        self._eid = 0
        self._active_process: Optional[Process] = None
        #: Events dispatched so far (the engine-throughput denominator).
        self.steps = 0
        # Free lists for recycled one-shot events (exact-class matched).
        self._event_pool: list = []
        self._timeout_pool: list = []

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    # -- event factories ---------------------------------------------------
    def event(self) -> Event:
        """A fresh untriggered event."""
        pool = self._event_pool
        if pool:
            event = pool.pop()
            event._value = _PENDING
            event._ok = True
            return event
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` units from now."""
        pool = self._timeout_pool
        if pool:
            if delay < 0:
                raise SimulationError(f"negative timeout delay: {delay}")
            event = pool.pop()
            event._value = value
            event._ok = True
            event._scheduled = True
            event.delay = delay
            eid = self._eid
            self._eid = eid + 1
            heappush(self._queue, (self._now + delay, NORMAL, eid, event))
            return event
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: Optional[str] = None) -> Process:
        """Start a new process from ``generator``."""
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- scheduling ----------------------------------------------------------
    def _schedule(self, event: Event, priority: int, delay: float = 0.0) -> None:
        if event._scheduled:
            return
        event._scheduled = True
        eid = self._eid
        self._eid = eid + 1
        heappush(self._queue, (self._now + delay, priority, eid, event))

    def schedule_callback(self, delay: float, fn: Callable[[], None]) -> Event:
        """Run a plain callable after ``delay`` (no process needed)."""
        return _Callback(self, delay, fn)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def _dispatch(self, event: Event) -> None:
        """Process one popped event: run callbacks, maybe recycle it.

        Recycling is gated on ``sys.getrefcount``: exactly two references
        (the caller's local + the getrefcount argument) prove that no
        process, condition, or user variable still holds the event, so
        resetting it for reuse is invisible.
        """
        callbacks = event.callbacks
        event.callbacks = None
        event._processed = True
        for callback in callbacks:
            callback(event)
        cls = event.__class__
        if cls is Timeout:
            pool = self._timeout_pool
            if sys.getrefcount(event) == 2 and len(pool) < _POOL_LIMIT:
                callbacks.clear()
                event.callbacks = callbacks
                event._processed = False
                event._scheduled = False
                event._value = _PENDING
                pool.append(event)
        elif cls is Event:
            pool = self._event_pool
            if sys.getrefcount(event) == 2 and len(pool) < _POOL_LIMIT:
                callbacks.clear()
                event.callbacks = callbacks
                event._processed = False
                event._scheduled = False
                event._value = _PENDING
                pool.append(event)

    def step(self) -> None:
        """Process the next scheduled event."""
        if not self._queue:
            raise SimulationError("no more events")
        when, _prio, eid, event = heappop(self._queue)
        self._now = when
        self.steps += 1
        if event.__class__ is Process:
            if event._sched_eid != eid:
                return  # stale direct-timer entry (interrupted/finished)
            if event._value is _PENDING:
                event._resume(_TICK)  # direct timer fired
                return
            # else: the completion entry — dispatch normally below.
        self._dispatch(event)

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or the clock reaches ``until``.

        When ``until`` is given the clock is advanced exactly to it even if
        the queue drains earlier, so post-run measurements see a consistent
        horizon.
        """
        # The dispatch loop is inlined (no step()/_dispatch() call per
        # event); keep the three copies of the recycle block in sync.
        queue = self._queue
        timeout_pool = self._timeout_pool
        event_pool = self._event_pool
        getrefcount = sys.getrefcount
        steps = 0
        try:
            if until is None:
                while queue:
                    when, _prio, eid, event = heappop(queue)
                    self._now = when
                    steps += 1
                    cls = event.__class__
                    if cls is Process:
                        if event._sched_eid != eid:
                            continue  # stale direct-timer entry
                        if event._value is _PENDING:
                            # Direct timer fired.  Inline the dominant
                            # send → yield-another-delay cycle; defer any
                            # other outcome to the generic machinery.
                            self._active_process = event
                            try:
                                target = event.generator.send(None)
                            except StopIteration as exc:
                                self._active_process = None
                                event._finalize(True, exc.value)
                                continue
                            except BaseException as exc:
                                self._active_process = None
                                event._finalize(False, exc)
                                continue
                            tcls = target.__class__
                            if (tcls is float or tcls is int) and target >= 0:
                                neid = self._eid
                                self._eid = neid + 1
                                heappush(queue,
                                         (when + target, NORMAL, neid, event))
                                event._sched_eid = neid
                                self._active_process = None
                                continue
                            event._continue(target)
                            self._active_process = None
                            continue
                        # else: completion entry — dispatch normally.
                    callbacks = event.callbacks
                    event.callbacks = None
                    event._processed = True
                    for callback in callbacks:
                        callback(event)
                    if cls is Timeout:
                        if getrefcount(event) == 2 and \
                                len(timeout_pool) < _POOL_LIMIT:
                            callbacks.clear()
                            event.callbacks = callbacks
                            event._processed = False
                            event._scheduled = False
                            event._value = _PENDING
                            timeout_pool.append(event)
                    elif cls is Event:
                        if getrefcount(event) == 2 and \
                                len(event_pool) < _POOL_LIMIT:
                            callbacks.clear()
                            event.callbacks = callbacks
                            event._processed = False
                            event._scheduled = False
                            event._value = _PENDING
                            event_pool.append(event)
                return
            limit = float(until)
            if limit < self._now:
                raise SimulationError(
                    f"cannot run backwards: now={self._now}, until={limit}")
            while queue and queue[0][0] <= limit:
                when, _prio, eid, event = heappop(queue)
                self._now = when
                steps += 1
                cls = event.__class__
                if cls is Process:
                    if event._sched_eid != eid:
                        continue  # stale direct-timer entry
                    if event._value is _PENDING:
                        # Direct timer fired (see the until=None loop).
                        self._active_process = event
                        try:
                            target = event.generator.send(None)
                        except StopIteration as exc:
                            self._active_process = None
                            event._finalize(True, exc.value)
                            continue
                        except BaseException as exc:
                            self._active_process = None
                            event._finalize(False, exc)
                            continue
                        tcls = target.__class__
                        if (tcls is float or tcls is int) and target >= 0:
                            neid = self._eid
                            self._eid = neid + 1
                            heappush(queue,
                                     (when + target, NORMAL, neid, event))
                            event._sched_eid = neid
                            self._active_process = None
                            continue
                        event._continue(target)
                        self._active_process = None
                        continue
                    # else: completion entry — dispatch normally.
                callbacks = event.callbacks
                event.callbacks = None
                event._processed = True
                for callback in callbacks:
                    callback(event)
                if cls is Timeout:
                    if getrefcount(event) == 2 and \
                            len(timeout_pool) < _POOL_LIMIT:
                        callbacks.clear()
                        event.callbacks = callbacks
                        event._processed = False
                        event._scheduled = False
                        event._value = _PENDING
                        timeout_pool.append(event)
                elif cls is Event:
                    if getrefcount(event) == 2 and \
                            len(event_pool) < _POOL_LIMIT:
                        callbacks.clear()
                        event.callbacks = callbacks
                        event._processed = False
                        event._scheduled = False
                        event._value = _PENDING
                        event_pool.append(event)
            self._now = limit
        finally:
            self.steps += steps
