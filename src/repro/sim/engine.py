"""Discrete-event simulation engine.

A small, dependency-free coroutine kernel in the style of SimPy.  Processes
are Python generators that ``yield`` events; the environment advances a
virtual clock from event to event.  Determinism is guaranteed: events
scheduled for the same timestamp fire in (priority, insertion order).

The engine is the substrate every simulated component (kernel wait queues,
epoll instances, L7 workers, traffic generators) runs on.  It is deliberately
minimal — only the primitives the load-balancer model needs:

- :class:`Environment` — clock + event heap + ``run()``.
- :class:`Event` — one-shot triggerable value/error carrier.
- :class:`Timeout` — an event that fires after a delay.
- :class:`Process` — a running generator; itself an event that fires when
  the generator returns; supports :meth:`Process.interrupt`.
- :class:`AnyOf` / :class:`AllOf` — condition events.

Performance notes (the ``repro.perf`` fast path)
------------------------------------------------
The engine's per-event cost is the unit economics of every sweep in this
repo, so the hot path is hand-flattened:

- ``Environment.run`` inlines the pop/dispatch loop (no ``step()`` call,
  no repeated attribute loads per event).
- A process may ``yield delay`` (a plain float/int) instead of
  ``yield env.timeout(delay)``: the engine schedules the resume directly
  on the heap with the same (time, priority, insertion-order) key the
  equivalent ``Timeout`` would have used, but allocates no event object
  and runs no callback list.  The yield expression evaluates to ``None``,
  exactly like a value-less timeout.
- ``Environment.timeout``/``event`` inline the whole construct+schedule
  sequence and draw from per-class free lists.  A processed ``Event`` or
  ``Timeout`` is recycled back into its pool only when
  ``sys.getrefcount`` proves the dispatch loop holds the sole remaining
  reference, so user code that retains an event (``t = env.timeout(5);
  yield t; t.value``) keeps exactly the semantics it always had.
- Scheduling goes through one flat sequence (eid bump + ``heappush``);
  ``Event.succeed``/``fail``/``Timeout.__init__`` perform it inline
  instead of chaining through ``_schedule``.
- ``AnyOf``/``AllOf`` maintain an incremental done-counter instead of
  recounting every sub-event per trigger (O(n) total, was O(n²)).
- ``schedule_callback`` allocates no per-event closure: the callable is
  carried on a slot of the event and invoked by one shared function.

None of this changes observable behaviour: event ordering (time, priority,
insertion order), RNG draws, and error semantics are bit-identical to the
straightforward implementation — pinned by the golden-hash determinism
tests in ``tests/test_determinism_golden.py``.

Example
-------
>>> env = Environment()
>>> def hello(env):
...     yield env.timeout(5)
...     return env.now
>>> proc = env.process(hello(env))
>>> env.run()
>>> proc.value
5
"""

from __future__ import annotations

import os
import sys
from heapq import heapify, heappop, heappush
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Environment",
    "WheelEnvironment",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "AnyOf",
    "AllOf",
    "SimulationError",
]

#: Priority for "urgent" events (fire before normal events at the same time).
URGENT = 0
#: Priority for ordinary events.
NORMAL = 1

#: Free-list capacity per event class (beyond this, objects fall to the GC).
_POOL_LIMIT = 1024


class SimulationError(Exception):
    """Raised for misuse of the simulation API."""


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot event that processes can wait on.

    An event starts *pending*, becomes *triggered* when scheduled, and
    *processed* once its callbacks have run.  It carries either a value
    (``succeed``) or an exception (``fail``).
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_processed", "_scheduled")

    #: Sentinel for "no value yet".
    PENDING = object()

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list] = []
        self._value: Any = _PENDING
        self._ok: bool = True
        self._processed = False
        self._scheduled = False

    # -- state inspection ------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been executed."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value; raises if still pending."""
        if self._value is _PENDING:
            raise SimulationError("event value is not yet available")
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        env = self.env
        eid = env._eid
        env._eid = eid + 1
        heappush(env._queue, (env._now, NORMAL, eid, self))
        self._scheduled = True
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        The exception is re-raised in every waiting process.
        """
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        env = self.env
        eid = env._eid
        env._eid = eid + 1
        heappush(env._queue, (env._now, NORMAL, eid, self))
        self._scheduled = True
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger with the state of another (triggered) event."""
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)

    # -- composition -----------------------------------------------------
    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.env, [self, other])

    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.env, [self, other])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self._processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


_PENDING = Event.PENDING

# Shared "your timer fired" event handed to Process._resume by the direct
# timer fast path.  It is permanently ok/None — exactly what a value-less
# Timeout would deliver — so one immortal instance serves every fire.
_TICK = object.__new__(Event)
_TICK.env = None
_TICK.callbacks = None
_TICK._value = None
_TICK._ok = True
_TICK._processed = True
_TICK._scheduled = True


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        # Flat init: every slot set exactly once, scheduling inlined (no
        # super().__init__ that first writes PENDING just to overwrite it,
        # no _schedule hop).
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._processed = False
        self._scheduled = True
        self.delay = delay
        eid = env._eid
        env._eid = eid + 1
        heappush(env._queue, (env._now + delay, NORMAL, eid, self))


def _invoke_callback(event: "Event") -> None:
    """Shared trampoline for :meth:`Environment.schedule_callback` events."""
    event.fn()


class _Callback(Timeout):
    """A timeout carrying a plain callable on a slot (no closure per event)."""

    __slots__ = ("fn",)

    def __init__(self, env: "Environment", delay: float,
                 fn: Callable[[], None]):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        self.env = env
        self.callbacks = [_invoke_callback]
        self._value = None
        self._ok = True
        self._processed = False
        self._scheduled = True
        self.delay = delay
        self.fn = fn
        eid = env._eid
        env._eid = eid + 1
        heappush(env._queue, (env._now + delay, NORMAL, eid, self))


class Initialize(Event):
    """Internal: kick-starts a freshly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        self.env = env
        self.callbacks = [process._resumer]
        self._value = None
        self._ok = True
        self._processed = False
        self._scheduled = True
        eid = env._eid
        env._eid = eid + 1
        heappush(env._queue, (env._now, URGENT, eid, self))


class Process(Event):
    """A running generator-based process.

    A ``Process`` is itself an event: it triggers when the generator
    returns (with the return value) or raises (with the exception).
    """

    __slots__ = ("generator", "_target", "name", "_resumer", "_sched_eid",
                 "_sched_entry")

    def __init__(self, env: "Environment", generator: Generator,
                 name: Optional[str] = None):
        if not hasattr(generator, "throw"):
            raise SimulationError(f"{generator!r} is not a generator")
        super().__init__(env)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Optional[Event] = None
        #: The one bound-method object used for every callback registration
        #: (a fresh ``self._resume`` per suspend would allocate each time).
        self._resumer = self._resume
        #: eid of this process's own live heap entry (a ``yield delay``
        #: direct timer, or the completion entry pushed by ``_finalize``).
        #: Any popped entry whose eid differs is stale and is skipped.
        self._sched_eid = -1
        #: Wheel scheduler only: the live slot entry for this process's
        #: direct timer (a mutable list), so interrupt() can tombstone it
        #: in place instead of leaving a stale entry to re-classify.
        self._sched_entry = None
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._value is _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process.

        Interrupting a dead process, or a process from within itself,
        is an error.
        """
        if not self.is_alive:
            raise SimulationError(f"{self.name} has terminated; cannot interrupt")
        if self is self.env.active_process:
            raise SimulationError("a process cannot interrupt itself")
        # Deliver via an urgent event so interrupt wins races at equal time.
        env = self.env
        event = env.event()
        event._ok = False
        event._value = Interrupt(cause)
        event.callbacks.append(self._resumer)
        eid = env._eid
        env._eid = eid + 1
        heappush(env._queue, (env._now, URGENT, eid, event))
        event._scheduled = True
        # Detach from the event the process was waiting on.  A direct
        # ``yield delay`` timer has no event to detach from: invalidating
        # _sched_eid turns its heap entry stale, and the dispatch loop
        # discards stale Process entries on pop.  Under the wheel scheduler
        # the live slot entry is additionally tombstoned in place so the
        # batched drain can skip it without consulting _sched_eid.
        self._sched_eid = -1
        entry = self._sched_entry
        if entry is not None:
            entry[3] = None
            entry[4] = None
            self._sched_entry = None
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resumer)
            except ValueError:
                pass
        self._target = None

    # -- scheduling core ---------------------------------------------------
    def _resume(self, event: Event) -> None:
        if self._value is not _PENDING:
            # A stale wakeup (e.g. an interrupt racing process completion
            # at the same timestamp) must not touch a finished generator.
            return
        entry = self._sched_entry
        if entry is not None:
            # Resuming via an event supersedes any armed direct-timer
            # entry (an interrupt delivered after the timer re-armed).
            # The heap scheduler catches this through the _sched_eid pop
            # guard; the wheel tombstones the entry in place.
            entry[3] = None
            entry[4] = None
            self._sched_entry = None
        env = self.env
        env._active_process = self
        self._target = None
        generator = self.generator
        if event._ok:
            try:
                target = generator.send(event._value)
            except StopIteration as exc:
                self._finalize(True, exc.value)
                env._active_process = None
                return
            except BaseException as exc:
                self._finalize(False, exc)
                env._active_process = None
                return
        else:
            # Propagate the failure (event error or interrupt) into the
            # generator; it may catch it and keep running.
            try:
                target = generator.throw(event._value)
            except StopIteration as stop:
                self._finalize(True, stop.value)
                env._active_process = None
                return
            except BaseException as err:
                self._finalize(False, err)
                env._active_process = None
                return
        cls = target.__class__
        if (cls is float or cls is int) and target >= 0:
            # Direct timer fast path: ``yield delay`` schedules the resume
            # itself — same (time, priority, eid) key a Timeout would get,
            # but no event object, no callback list.  The env hook lets the
            # wheel scheduler place the timer without a staging round trip.
            self._sched_eid = env._stage_timer(self, env._now + target)
            env._active_process = None
            return
        self._continue(target)
        env._active_process = None

    def _continue(self, target: Any) -> None:
        """Suspend on a yielded target (the non-direct-timer cases).

        Loops while targets are already fired, stepping the generator with
        their values; returns once the process is suspended (callback
        registered or direct timer scheduled) or finished.  The caller owns
        ``env._active_process``.
        """
        env = self.env
        generator = self.generator
        while True:
            cls = target.__class__
            if cls is float or cls is int:
                if target >= 0:
                    self._sched_eid = env._stage_timer(
                        self, env._now + target)
                    return
                exc = SimulationError(f"negative timeout delay: {target}")
                try:
                    generator.throw(exc)
                except BaseException as err:
                    self._finalize(False, err)
                    return
                raise exc

            if not isinstance(target, Event):
                exc = SimulationError(
                    f"process {self.name!r} yielded a non-event: {target!r}")
                try:
                    generator.throw(exc)
                except BaseException as err:
                    self._finalize(False, err)
                    return
                raise exc

            if target.env is not env:
                raise SimulationError(
                    "cannot wait on an event from another environment")

            callbacks = target.callbacks
            if not target._processed and callbacks is not None:
                callbacks.append(self._resumer)
                self._target = target
                return

            # Already fired: continue immediately with its value.
            if target._ok:
                try:
                    target = generator.send(target._value)
                except StopIteration as exc:
                    self._finalize(True, exc.value)
                    return
                except BaseException as exc:
                    self._finalize(False, exc)
                    return
            else:
                try:
                    target = generator.throw(target._value)
                except StopIteration as stop:
                    self._finalize(True, stop.value)
                    return
                except BaseException as err:
                    self._finalize(False, err)
                    return

    def _finalize(self, ok: bool, value: Any) -> None:
        self._ok = ok
        self._value = value
        env = self.env
        self._sched_eid = env._stage_completion(self)
        self._scheduled = True


class _Condition(Event):
    """Base for AnyOf/AllOf composition events."""

    __slots__ = ("events", "_pending", "_done", "_checker")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events = list(events)
        for event in self.events:
            if event.env is not env:
                raise SimulationError("all condition events must share an environment")
        self._pending = 0
        #: Sub-events seen done (processed + ok) so far — incremented by
        #: ``_check`` instead of recounting the whole list per trigger.
        self._done = 0
        if not self.events:
            self.succeed({})
            return
        checker = self._checker = self._check
        for event in self.events:
            if event.callbacks is None or event._processed:
                checker(event)
            else:
                self._pending += 1
                event.callbacks.append(checker)
        if self._value is _PENDING and self._pending == 0:
            # All already processed but condition not yet met (AllOf met it
            # inside _check; AnyOf with zero events handled above).
            self._evaluate(final=True)

    # Subclasses decide when the condition is satisfied.
    def _satisfied(self, done: int, total: int) -> bool:
        raise NotImplementedError

    def _check(self, event: Event) -> None:
        if self._value is not _PENDING:
            return
        if not event._ok:
            self.fail(event._value)
            return
        done = self._done + 1
        self._done = done
        if self._satisfied(done, len(self.events)):
            self.succeed(self._collect())

    def _evaluate(self, final: bool = False) -> None:
        if self._satisfied(self._done, len(self.events)):
            self.succeed(self._collect())
        elif final:
            raise SimulationError("condition can never be satisfied")

    def _collect(self) -> dict:
        """Values of sub-events that have fired, in declaration order."""
        return {ev: ev._value for ev in self.events if ev._processed and ev._ok}


class AnyOf(_Condition):
    """Fires when any sub-event has fired."""

    __slots__ = ()

    def _satisfied(self, done: int, total: int) -> bool:
        return done >= 1


class AllOf(_Condition):
    """Fires when all sub-events have fired."""

    __slots__ = ()

    def _satisfied(self, done: int, total: int) -> bool:
        return done >= total


class Environment:
    """The simulation environment: virtual clock and event queue.

    Two schedulers share one external contract (bit-identical event order):

    - ``heap`` (default): a binary heap keyed on ``(when, priority, eid)``.
    - ``wheel``: a calendar-queue / timer wheel that drains whole same-tick
      slots in one sorted batch (see :class:`WheelEnvironment`).

    Select with ``Environment(scheduler="wheel")`` or ``REPRO_SCHED=wheel``
    in the process environment.
    """

    __slots__ = ("_now", "_queue", "_eid", "_active_process", "steps",
                 "_event_pool", "_timeout_pool", "_pool_limit")

    def __new__(cls, initial_time: float = 0.0,
                scheduler: Optional[str] = None,
                free_list_cap: Optional[int] = None) -> "Environment":
        if cls is Environment:
            name = scheduler if scheduler is not None \
                else os.environ.get("REPRO_SCHED", "heap")
            if name == "wheel":
                return object.__new__(WheelEnvironment)
            if name != "heap":
                raise SimulationError(
                    f"unknown scheduler {name!r}; expected 'heap' or 'wheel'")
        return object.__new__(cls)

    def __init__(self, initial_time: float = 0.0,
                 scheduler: Optional[str] = None,
                 free_list_cap: Optional[int] = None):
        self._now = float(initial_time)
        self._queue: list = []
        self._eid = 0
        self._active_process: Optional[Process] = None
        #: Events dispatched so far (the engine-throughput denominator).
        self.steps = 0
        # Free lists for recycled one-shot events (exact-class matched).
        self._event_pool: list = []
        self._timeout_pool: list = []
        if free_list_cap is None:
            self._pool_limit = _POOL_LIMIT
        else:
            cap = int(free_list_cap)
            if cap < 0:
                raise SimulationError(
                    f"free_list_cap must be >= 0, got {free_list_cap!r}")
            self._pool_limit = cap

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def scheduler(self) -> str:
        """Name of the active scheduler implementation."""
        return "heap"

    @property
    def free_list_cap(self) -> int:
        """Per-class free-list capacity for recycled one-shot events."""
        return self._pool_limit

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    # -- event factories ---------------------------------------------------
    def event(self) -> Event:
        """A fresh untriggered event."""
        pool = self._event_pool
        if pool:
            event = pool.pop()
            event._value = _PENDING
            event._ok = True
            return event
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` units from now."""
        pool = self._timeout_pool
        if pool:
            if delay < 0:
                raise SimulationError(f"negative timeout delay: {delay}")
            event = pool.pop()
            event._value = value
            event._ok = True
            event._scheduled = True
            event.delay = delay
            eid = self._eid
            self._eid = eid + 1
            heappush(self._queue, (self._now + delay, NORMAL, eid, event))
            return event
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: Optional[str] = None) -> Process:
        """Start a new process from ``generator``."""
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- scheduling ----------------------------------------------------------
    def _schedule(self, event: Event, priority: int, delay: float = 0.0) -> None:
        if event._scheduled:
            return
        event._scheduled = True
        eid = self._eid
        self._eid = eid + 1
        heappush(self._queue, (self._now + delay, priority, eid, event))

    def schedule_callback(self, delay: float, fn: Callable[[], None]) -> Event:
        """Run a plain callable after ``delay`` (no process needed)."""
        return _Callback(self, delay, fn)

    def _stage_timer(self, process: "Process", when: float) -> int:
        """Schedule a direct ``yield delay`` resume for ``process``.

        Scheduler hook: the heap stages onto ``_queue``; the wheel
        override places the entry straight into its slot structure.
        Returns the eid the caller must record in ``_sched_eid``.
        """
        eid = self._eid
        self._eid = eid + 1
        heappush(self._queue, (when, NORMAL, eid, process))
        return eid

    def _stage_completion(self, process: "Process") -> int:
        """Schedule ``process``'s completion event at the current time."""
        eid = self._eid
        self._eid = eid + 1
        heappush(self._queue, (self._now, NORMAL, eid, process))
        return eid

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def _dispatch(self, event: Event) -> None:
        """Process one popped event: run callbacks, maybe recycle it.

        Recycling is gated on ``sys.getrefcount``: exactly two references
        (the caller's local + the getrefcount argument) prove that no
        process, condition, or user variable still holds the event, so
        resetting it for reuse is invisible.
        """
        callbacks = event.callbacks
        event.callbacks = None
        event._processed = True
        for callback in callbacks:
            callback(event)
        cls = event.__class__
        if cls is Timeout:
            pool = self._timeout_pool
            if sys.getrefcount(event) == 2 and len(pool) < self._pool_limit:
                callbacks.clear()
                event.callbacks = callbacks
                event._processed = False
                event._scheduled = False
                event._value = _PENDING
                pool.append(event)
        elif cls is Event:
            pool = self._event_pool
            if sys.getrefcount(event) == 2 and len(pool) < self._pool_limit:
                callbacks.clear()
                event.callbacks = callbacks
                event._processed = False
                event._scheduled = False
                event._value = _PENDING
                pool.append(event)

    def step(self) -> None:
        """Process the next scheduled event."""
        if not self._queue:
            raise SimulationError("no more events")
        when, _prio, eid, event = heappop(self._queue)
        self._now = when
        self.steps += 1
        if event.__class__ is Process:
            if event._sched_eid != eid:
                return  # stale direct-timer entry (interrupted/finished)
            if event._value is _PENDING:
                event._resume(_TICK)  # direct timer fired
                return
            # else: the completion entry — dispatch normally below.
        self._dispatch(event)

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or the clock reaches ``until``.

        When ``until`` is given the clock is advanced exactly to it even if
        the queue drains earlier, so post-run measurements see a consistent
        horizon.
        """
        # The dispatch loop is inlined (no step()/_dispatch() call per
        # event); keep the three copies of the recycle block in sync.
        queue = self._queue
        timeout_pool = self._timeout_pool
        event_pool = self._event_pool
        pool_limit = self._pool_limit
        getrefcount = sys.getrefcount
        steps = 0
        try:
            if until is None:
                while queue:
                    when, _prio, eid, event = heappop(queue)
                    self._now = when
                    steps += 1
                    cls = event.__class__
                    if cls is Process:
                        if event._sched_eid != eid:
                            continue  # stale direct-timer entry
                        if event._value is _PENDING:
                            # Direct timer fired.  Inline the dominant
                            # send → yield-another-delay cycle; defer any
                            # other outcome to the generic machinery.
                            self._active_process = event
                            try:
                                target = event.generator.send(None)
                            except StopIteration as exc:
                                self._active_process = None
                                event._finalize(True, exc.value)
                                continue
                            except BaseException as exc:
                                self._active_process = None
                                event._finalize(False, exc)
                                continue
                            tcls = target.__class__
                            if (tcls is float or tcls is int) and target >= 0:
                                neid = self._eid
                                self._eid = neid + 1
                                heappush(queue,
                                         (when + target, NORMAL, neid, event))
                                event._sched_eid = neid
                                self._active_process = None
                                continue
                            event._continue(target)
                            self._active_process = None
                            continue
                        # else: completion entry — dispatch normally.
                    callbacks = event.callbacks
                    event.callbacks = None
                    event._processed = True
                    for callback in callbacks:
                        callback(event)
                    if cls is Timeout:
                        if getrefcount(event) == 2 and \
                                len(timeout_pool) < pool_limit:
                            callbacks.clear()
                            event.callbacks = callbacks
                            event._processed = False
                            event._scheduled = False
                            event._value = _PENDING
                            timeout_pool.append(event)
                    elif cls is Event:
                        if getrefcount(event) == 2 and \
                                len(event_pool) < pool_limit:
                            callbacks.clear()
                            event.callbacks = callbacks
                            event._processed = False
                            event._scheduled = False
                            event._value = _PENDING
                            event_pool.append(event)
                return
            limit = float(until)
            if limit < self._now:
                raise SimulationError(
                    f"cannot run backwards: now={self._now}, until={limit}")
            while queue and queue[0][0] <= limit:
                when, _prio, eid, event = heappop(queue)
                self._now = when
                steps += 1
                cls = event.__class__
                if cls is Process:
                    if event._sched_eid != eid:
                        continue  # stale direct-timer entry
                    if event._value is _PENDING:
                        # Direct timer fired (see the until=None loop).
                        self._active_process = event
                        try:
                            target = event.generator.send(None)
                        except StopIteration as exc:
                            self._active_process = None
                            event._finalize(True, exc.value)
                            continue
                        except BaseException as exc:
                            self._active_process = None
                            event._finalize(False, exc)
                            continue
                        tcls = target.__class__
                        if (tcls is float or tcls is int) and target >= 0:
                            neid = self._eid
                            self._eid = neid + 1
                            heappush(queue,
                                     (when + target, NORMAL, neid, event))
                            event._sched_eid = neid
                            self._active_process = None
                            continue
                        event._continue(target)
                        self._active_process = None
                        continue
                    # else: completion entry — dispatch normally.
                callbacks = event.callbacks
                event.callbacks = None
                event._processed = True
                for callback in callbacks:
                    callback(event)
                if cls is Timeout:
                    if getrefcount(event) == 2 and \
                            len(timeout_pool) < pool_limit:
                        callbacks.clear()
                        event.callbacks = callbacks
                        event._processed = False
                        event._scheduled = False
                        event._value = _PENDING
                        timeout_pool.append(event)
                elif cls is Event:
                    if getrefcount(event) == 2 and \
                            len(event_pool) < pool_limit:
                        callbacks.clear()
                        event.callbacks = callbacks
                        event._processed = False
                        event._scheduled = False
                        event._value = _PENDING
                        event_pool.append(event)
            self._now = limit
        finally:
            self.steps += steps


#: Number of slots in the calendar ring (power of two → masked indexing).
_WHEEL_SLOTS = 512
_WHEEL_MASK = _WHEEL_SLOTS - 1
#: Tick values at/above this are "far": kept in the overflow heap without
#: computing int() (guards against inf deadlines overflowing int()).
_FAR_TICK = float(2 ** 62)


class WheelEnvironment(Environment):
    """Calendar-queue (timer-wheel) scheduler with bit-identical ordering.

    Drop-in replacement for the heap scheduler: same external contract,
    same ``(when, priority, eid)`` total order, selected via
    ``Environment(scheduler="wheel")`` or ``REPRO_SCHED=wheel``.

    Design
    ------
    - Time is bucketed into ticks of granularity ``g``:
      ``tick(when) = int(when / g)``.  ``x * (1/g)`` followed by ``int()``
      is monotone in ``x`` for any ``g > 0``, so bucketing can never
      reorder two events — each slot is sorted by the full
      ``(when, priority, eid)`` key before draining, which restores the
      exact heap order within a tick.
    - The ring covers ticks ``[base, base + 512)``; each slot holds exactly
      one tick (ticks are never scheduled more than a window ahead of
      ``base``, so no collision chains).  Deadlines beyond the window —
      and any non-finite ones — go to a fallback overflow heap and join
      their tick's batch when ``base`` reaches them.
    - Producers keep staging entries on the shared ``_queue`` heap (so
      ``Event.succeed``/``Timeout.__init__``/direct timers are scheduler
      agnostic); the run loop absorbs the staging batch before every
      dispatch.  Entries are mutable 5-lists ``[when, prio, eid, event,
      send]`` reused in place on the dominant timer→timer cycle: ``send``
      caches the generator's bound ``send`` for live direct timers and is
      ``None`` for generic events; ``event is None`` marks a tombstone
      (a stale direct-timer entry — interrupted or superseded — kept so
      ``steps`` matches the heap scheduler's stale-pop accounting).
    - Same-tick arrivals scheduled *while* the tick drains merge through
      the small ``_cur`` heap; everything else is one slot scan + one
      ``list.sort`` per tick instead of N heap pops — the batching that
      buys the O(1)-vs-O(log n) gap at scale.
    - ``g`` is retuned deterministically (quarter of the mean pending
      delay over a bounded sample) whenever the wheel runs dry and must
      re-anchor on the overflow heap.
    """

    __slots__ = ("_wheel", "_base", "_curb", "_g", "_inv_g", "_overflow",
                 "_cur", "_ovf_dirty")

    def __init__(self, initial_time: float = 0.0,
                 scheduler: Optional[str] = None,
                 free_list_cap: Optional[int] = None):
        super().__init__(initial_time, scheduler, free_list_cap)
        self._wheel = [[] for _ in range(_WHEEL_SLOTS)]
        # Start deliberately fine: a too-fine granularity self-heals (the
        # first real deadlines overflow the window, the wheel runs dry,
        # and _rebase retunes from their actual spacing), whereas a
        # too-coarse one would funnel everything through the merge heap.
        self._g = 1e-6
        self._inv_g = 1e6
        self._base = int(self._now * 1e6)
        #: Ticks <= _curb live in the ``_cur`` merge heap, never in slots.
        self._curb = self._base - 1
        self._overflow: list = []
        #: True while ``_overflow`` is an unordered append pile; it is
        #: heapified (or sorted, by ``_rebase``) before any read.  Keeps
        #: the mass first-yield migration at startup O(n log n) in C
        #: instead of n Python-level heappushes.
        self._ovf_dirty = False
        self._cur: list = []

    @property
    def scheduler(self) -> str:
        return "wheel"

    # -- scheduler hooks (bypass the staging queue) ----------------------
    def _stage_timer(self, process: "Process", when: float) -> int:
        """Place a direct-timer entry straight into the wheel.

        Skips the staging-queue round trip the generic producers pay:
        the entry is classified against the live ``_base``/``_curb``
        (kept in sync by ``run`` before any user code executes).
        """
        eid = self._eid
        self._eid = eid + 1
        entry = [when, NORMAL, eid, process, process.generator.send]
        process._sched_entry = entry
        t = when * self._inv_g
        if t < _FAR_TICK:
            tick = int(t)
            if tick <= self._curb:
                heappush(self._cur, entry)
            elif tick < self._base + _WHEEL_SLOTS:
                self._wheel[tick & _WHEEL_MASK].append(entry)
            else:
                self._overflow.append(entry)
                self._ovf_dirty = True
        else:
            self._overflow.append(entry)
            self._ovf_dirty = True
        return eid

    def _stage_completion(self, process: "Process") -> int:
        """Place a process-completion entry (generic dispatch, no timer)."""
        eid = self._eid
        self._eid = eid + 1
        when = self._now
        entry = [when, NORMAL, eid, process, None]
        t = when * self._inv_g
        if t < _FAR_TICK:
            tick = int(t)
            if tick <= self._curb:
                heappush(self._cur, entry)
            elif tick < self._base + _WHEEL_SLOTS:
                self._wheel[tick & _WHEEL_MASK].append(entry)
            else:
                self._overflow.append(entry)
                self._ovf_dirty = True
        else:
            self._overflow.append(entry)
            self._ovf_dirty = True
        return eid

    # -- internal machinery ----------------------------------------------
    def _retune(self, sample: list) -> None:
        """Pick a slot granularity from pending deadlines and re-anchor.

        Deterministic: the sample is the first entries of a heap in its
        array order.  Only called while the wheel and ``_cur`` are empty,
        so no stored entry was placed under the old granularity.
        """
        now = self._now
        total = 0.0
        k = 0
        for item in sample[:64]:
            d = item[0] - now
            if 0.0 < d < 1e18:
                total += d
                k += 1
        if k:
            g = total / k * 0.25
            if g > 0.0:
                self._g = g
                self._inv_g = 1.0 / g
        t = now * self._inv_g
        self._base = int(t) if t < _FAR_TICK else 0
        self._curb = self._base - 1

    def _rebase(self) -> None:
        """Re-anchor on the overflow heap after the wheel ran dry.

        The overflow list is sorted once (C-speed) and the in-window
        prefix moved out in bulk; the sorted remainder is a valid heap.
        """
        overflow = self._overflow
        self._retune(overflow)
        overflow.sort()
        self._ovf_dirty = False
        inv_g = self._inv_g
        base = self._base
        wheel = self._wheel
        wlimit = base + _WHEEL_SLOTS
        k = 0
        for entry in overflow:
            t = entry[0] * inv_g
            if t >= _FAR_TICK:
                break
            tick = int(t)
            if tick >= wlimit:
                break
            if tick <= base:
                heappush(self._cur, entry)
                self._curb = base
            else:
                wheel[tick & _WHEEL_MASK].append(entry)
            k += 1
        if k:
            del overflow[:k]
        elif overflow:
            # Far/non-finite deadlines only: hand the earliest to the
            # merge heap so the run loop still makes progress.
            heappush(self._cur, overflow.pop(0))
            self._curb = base

    def _absorb(self, base: int, boundary: int) -> None:
        """Move staged ``(when, prio, eid, event)`` tuples into the wheel.

        Ticks ``<= boundary`` go to the ``_cur`` merge heap (the tick
        currently draining, or an already-passed one); in-window ticks go
        to their slot; the rest to the overflow heap.
        """
        queue = self._queue
        wheel = self._wheel
        overflow = self._overflow
        cur = self._cur
        inv_g = self._inv_g
        wlimit = base + _WHEEL_SLOTS
        for when, prio, eid, event in queue:
            if event.__class__ is Process:
                if event._sched_eid != eid:
                    # Stale direct-timer entry: tombstone it so ``steps``
                    # counts it exactly where the heap would have.
                    entry = [when, prio, eid, None, None]
                elif event._value is _PENDING:
                    entry = [when, prio, eid, event, event.generator.send]
                    event._sched_entry = entry
                else:
                    entry = [when, prio, eid, event, None]  # completion
            else:
                entry = [when, prio, eid, event, None]
            t = when * inv_g
            if t < _FAR_TICK:
                tick = int(t)
                if tick <= boundary:
                    heappush(cur, entry)
                elif tick < wlimit:
                    wheel[tick & _WHEEL_MASK].append(entry)
                else:
                    overflow.append(entry)
                    self._ovf_dirty = True
            else:
                overflow.append(entry)
                self._ovf_dirty = True
        del queue[:]

    def _dispatch_entry(self, entry: list, base: int, boundary: int) -> None:
        """Dispatch one wheel entry (the generic, non-batched path)."""
        event = entry[3]
        if event is None:
            self._now = entry[0]  # tombstone: advance the clock, skip
            return
        when = entry[0]
        self._now = when
        send = entry[4]
        if send is not None:
            # Live direct timer.
            self._active_process = event
            try:
                target = send(None)
            except StopIteration as exc:
                self._active_process = None
                event._sched_entry = None
                event._finalize(True, exc.value)
                return
            except BaseException as exc:
                self._active_process = None
                event._sched_entry = None
                event._finalize(False, exc)
                return
            tcls = target.__class__
            if (tcls is float or tcls is int) and target >= 0:
                eid = self._eid
                self._eid = eid + 1
                nw = when + target
                entry[0] = nw
                entry[2] = eid
                event._sched_eid = eid
                t = nw * self._inv_g
                if t < _FAR_TICK:
                    tick = int(t)
                    if tick <= boundary:
                        heappush(self._cur, entry)
                    elif tick < base + _WHEEL_SLOTS:
                        self._wheel[tick & _WHEEL_MASK].append(entry)
                    else:
                        self._overflow.append(entry)
                        self._ovf_dirty = True
                else:
                    self._overflow.append(entry)
                    self._ovf_dirty = True
                self._active_process = None
                return
            event._sched_entry = None
            event._continue(target)
            self._active_process = None
            return
        # Generic event or process completion entry.  Inlined dispatch:
        # clearing entry[3] first lets the refcount recycle gate see the
        # same two references the heap loop's pop would have left.
        entry[3] = None
        callbacks = event.callbacks
        event.callbacks = None
        event._processed = True
        for callback in callbacks:
            callback(event)
        ecls = event.__class__
        if ecls is Timeout:
            pool = self._timeout_pool
            if sys.getrefcount(event) == 2 and len(pool) < self._pool_limit:
                callbacks.clear()
                event.callbacks = callbacks
                event._processed = False
                event._scheduled = False
                event._value = _PENDING
                pool.append(event)
        elif ecls is Event:
            pool = self._event_pool
            if sys.getrefcount(event) == 2 and len(pool) < self._pool_limit:
                callbacks.clear()
                event.callbacks = callbacks
                event._processed = False
                event._scheduled = False
                event._value = _PENDING
                pool.append(event)

    def _pop_next(self) -> Optional[list]:
        """Pop the globally smallest pending entry (cold path for step())."""
        if self._queue:
            self._absorb(self._base, self._curb)
        cur = self._cur
        overflow = self._overflow
        if overflow and self._ovf_dirty:
            heapify(overflow)
            self._ovf_dirty = False
        wheel = self._wheel
        slot_entry = None
        slot = None
        b = self._base
        for _ in range(_WHEEL_SLOTS):
            cand = wheel[b & _WHEEL_MASK]
            if cand:
                cand.sort()
                slot_entry = cand[0]
                slot = cand
                break
            b += 1
        best = None
        src = 0
        if cur:
            best = cur[0]
            src = 1
        if slot_entry is not None and (best is None or slot_entry < best):
            best = slot_entry
            src = 2
        if overflow and (best is None or overflow[0] < best):
            best = overflow[0]
            src = 3
        if best is None:
            return None
        if src == 1:
            return heappop(cur)
        if src == 3:
            return heappop(overflow)
        del slot[0]
        return best

    # -- public API overrides --------------------------------------------
    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none.

        Stale (tombstoned) entries keep their deadline, matching the heap
        scheduler, whose ``peek`` also sees stale entries.
        """
        best = float("inf")
        queue = self._queue
        if queue and queue[0][0] < best:
            best = queue[0][0]
        cur = self._cur
        if cur and cur[0][0] < best:
            best = cur[0][0]
        overflow = self._overflow
        if overflow:
            if self._ovf_dirty:
                heapify(overflow)
                self._ovf_dirty = False
            if overflow[0][0] < best:
                best = overflow[0][0]
        for slot in self._wheel:
            for entry in slot:
                if entry[0] < best:
                    best = entry[0]
        return best

    def step(self) -> None:
        """Process the next scheduled event."""
        entry = self._pop_next()
        if entry is None:
            raise SimulationError("no more events")
        self.steps += 1
        self._dispatch_entry(entry, self._base, self._curb)

    def run(self, until: Optional[float] = None) -> None:
        """Run until everything drains or the clock reaches ``until``."""
        if until is None:
            limit = None
        else:
            limit = float(until)
            if limit < self._now:
                raise SimulationError(
                    f"cannot run backwards: now={self._now}, until={limit}")
        queue = self._queue
        wheel = self._wheel
        overflow = self._overflow
        cur = self._cur
        timeout_pool = self._timeout_pool
        event_pool = self._event_pool
        pool_limit = self._pool_limit
        getrefcount = sys.getrefcount
        mask = _WHEEL_MASK
        far = _FAR_TICK
        base = self._base
        curb = self._curb
        inv_g = self._inv_g
        steps = 0
        try:
            while True:
                if queue:
                    self._absorb(base, curb)
                # Drain carried-over entries (ticks <= curb) first; they
                # strictly precede every slot/overflow entry.
                while cur:
                    entry = cur[0]
                    if limit is not None and entry[0] > limit:
                        self._now = limit
                        return
                    heappop(cur)
                    steps += 1
                    self._dispatch_entry(entry, base, curb)
                    if queue:
                        self._absorb(base, curb)
                # Pick the next tick: first occupied slot vs overflow top.
                ovf_tick = None
                if overflow:
                    if self._ovf_dirty:
                        heapify(overflow)
                        self._ovf_dirty = False
                    t = overflow[0][0] * inv_g
                    if t < far:
                        ovf_tick = int(t)
                b = base
                idx = b & mask
                run = wheel[idx]
                scanned = 0
                while not run:
                    if ovf_tick is not None and b >= ovf_tick:
                        break
                    scanned += 1
                    if scanned > mask:
                        run = None
                        break
                    b += 1
                    idx = b & mask
                    run = wheel[idx]
                if run is None:
                    if overflow:
                        self._rebase()
                        base = self._base
                        curb = self._curb
                        inv_g = self._inv_g
                        continue
                    if queue or cur:
                        continue  # raced in via a rebase hand-off
                    if limit is not None:
                        self._now = limit
                    return
                base = b
                wheel[idx] = []
                # Publish before any user code runs: _stage_timer/
                # _stage_completion classify against these live bounds.
                self._base = base
                self._curb = base
                if ovf_tick is not None and ovf_tick <= base:
                    while overflow:
                        t = overflow[0][0] * inv_g
                        if t >= far or int(t) > base:
                            break
                        run.append(heappop(overflow))
                run.sort()
                if limit is not None:
                    t = limit * inv_g
                    if t < far and int(t) <= base:
                        # Horizon ends inside this tick: route the batch
                        # through the merge heap, which enforces the limit
                        # entry by entry at the top of the loop.
                        cur.extend(run)  # sorted list is a valid heap
                        curb = base
                        continue
                # ---- fast batched drain of tick ``base`` ----
                # ``_active_process`` is cleared lazily on this path: no
                # user code observes it between two timer fires, so the
                # next fire's store overwrites it; every exit that can
                # reach user code (generic dispatch, cur merge, loop end,
                # exception repair) clears it explicitly.
                wlimit = base + _WHEEL_SLOTS
                ndisp = 0
                now_l = self._now
                try:
                    for entry in run:
                        if queue:
                            self._absorb(base, base)
                        if cur:
                            self._active_process = None
                            while cur and cur[0] < entry:
                                e = heappop(cur)
                                steps += 1
                                self._dispatch_entry(e, base, base)
                                if queue:
                                    self._absorb(base, base)
                        ndisp += 1
                        send = entry[4]
                        if send is not None:
                            # Dominant cycle: direct timer fires, process
                            # yields the next delay, entry is reused.
                            event = entry[3]
                            when = entry[0]
                            if when != now_l:
                                self._now = now_l = when
                            self._active_process = event
                            try:
                                target = send(None)
                            except StopIteration as exc:
                                event._sched_entry = None
                                event._finalize(True, exc.value)
                                continue
                            except BaseException as exc:
                                event._sched_entry = None
                                event._finalize(False, exc)
                                continue
                            tcls = target.__class__
                            if (tcls is float or tcls is int) and target >= 0:
                                neid = self._eid
                                self._eid = neid + 1
                                nw = when + target
                                entry[0] = nw
                                entry[2] = neid
                                # (_sched_eid is not refreshed here: wheel
                                # staleness is tracked by tombstoning the
                                # entry itself, and direct timers never
                                # appear on the staging queue.)
                                t = nw * inv_g
                                if t < far:
                                    tick = int(t)
                                    if tick > base:
                                        if tick < wlimit:
                                            wheel[tick & mask].append(entry)
                                        else:
                                            overflow.append(entry)
                                            self._ovf_dirty = True
                                    else:
                                        heappush(cur, entry)
                                else:
                                    overflow.append(entry)
                                    self._ovf_dirty = True
                                continue
                            event._sched_entry = None
                            event._continue(target)
                            self._active_process = None
                            continue
                        event = entry[3]
                        if event is None:
                            if entry[0] != now_l:
                                self._now = now_l = entry[0]
                            continue  # tombstone
                        # Generic event / completion entry: inline the
                        # dispatch + refcount-gated recycle (keep in sync
                        # with Environment.run).
                        self._active_process = None
                        entry[3] = None
                        if entry[0] != now_l:
                            self._now = now_l = entry[0]
                        callbacks = event.callbacks
                        event.callbacks = None
                        event._processed = True
                        for callback in callbacks:
                            callback(event)
                        ecls = event.__class__
                        if ecls is Timeout:
                            if getrefcount(event) == 2 and \
                                    len(timeout_pool) < pool_limit:
                                callbacks.clear()
                                event.callbacks = callbacks
                                event._processed = False
                                event._scheduled = False
                                event._value = _PENDING
                                timeout_pool.append(event)
                        elif ecls is Event:
                            if getrefcount(event) == 2 and \
                                    len(event_pool) < pool_limit:
                                callbacks.clear()
                                event.callbacks = callbacks
                                event._processed = False
                                event._scheduled = False
                                event._value = _PENDING
                                event_pool.append(event)
                except BaseException:
                    # A callback raised: preserve the undrained remainder
                    # (the heap scheduler would keep it on the queue).
                    self._active_process = None
                    steps += ndisp
                    for e in run[ndisp:]:
                        heappush(cur, e)
                    curb = base
                    raise
                self._active_process = None
                steps += ndisp
                # Same-tick stragglers scheduled by the last few entries.
                while queue or cur:
                    if queue:
                        self._absorb(base, base)
                    if not cur:
                        break
                    e = heappop(cur)
                    steps += 1
                    self._dispatch_entry(e, base, base)
                base += 1
                curb = base - 1
                self._base = base
                self._curb = curb
        finally:
            self.steps += steps
            self._base = base
            self._curb = curb
