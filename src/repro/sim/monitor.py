"""Measurement instruments for simulation runs.

Provides the primitives the experiment harnesses use to collect the paper's
metrics: raw sample accumulators (latency distributions), time-weighted
gauges (connection counts, CPU utilization), and periodic samplers that poll
a callable on a fixed interval (Fig. 13's per-minute SD sampling).
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, List, Optional, Tuple

from .engine import Environment

__all__ = ["Samples", "TimeWeighted", "PeriodicSampler", "BusyTracker"]


class Samples:
    """An accumulator of raw numeric samples with percentile queries."""

    def __init__(self, name: str = ""):
        self.name = name
        self.values: List[float] = []
        # Cached sorted copy; invalidated on mutation so repeated
        # percentile/CDF queries don't re-sort an unchanged accumulator.
        self._sorted: Optional[List[float]] = None

    def add(self, value: float) -> None:
        self.values.append(float(value))
        self._sorted = None

    def extend(self, values: Iterable[float]) -> None:
        self.values.extend(float(v) for v in values)
        self._sorted = None

    def _sorted_values(self) -> List[float]:
        if self._sorted is None or len(self._sorted) != len(self.values):
            self._sorted = sorted(self.values)
        return self._sorted

    def __len__(self) -> int:
        return len(self.values)

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        return sum(self.values) / len(self.values) if self.values else 0.0

    @property
    def total(self) -> float:
        return sum(self.values)

    def percentile(self, p: float) -> float:
        """Linear-interpolated percentile, ``p`` in [0, 100]."""
        if not self.values:
            return 0.0
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        data = self._sorted_values()
        if len(data) == 1:
            return data[0]
        rank = (p / 100) * (len(data) - 1)
        low = int(math.floor(rank))
        high = int(math.ceil(rank))
        if low == high:
            return data[low]
        frac = rank - low
        # Clamp to the bracketing samples: the weighted sum can underflow
        # below data[low] when both neighbours are subnormal.
        value = data[low] * (1 - frac) + data[high] * frac
        return min(max(value, data[low]), data[high])

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p90(self) -> float:
        return self.percentile(90)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    @property
    def p999(self) -> float:
        return self.percentile(99.9)

    @property
    def maximum(self) -> float:
        return max(self.values) if self.values else 0.0

    @property
    def minimum(self) -> float:
        return min(self.values) if self.values else 0.0

    def cdf(self, points: int = 100) -> List[Tuple[float, float]]:
        """(value, cumulative fraction) pairs for plotting a CDF."""
        if not self.values:
            return []
        data = self._sorted_values()
        n = len(data)
        step = max(1, n // points)
        out = [(data[i], (i + 1) / n) for i in range(0, n, step)]
        if out[-1][0] != data[-1]:
            out.append((data[-1], 1.0))
        return out


class TimeWeighted:
    """A gauge whose average is weighted by how long each value was held.

    Used for connection counts and queue depths: ``set()`` records a new
    level at the current simulation time, and :meth:`average` integrates.
    """

    def __init__(self, env: Environment, initial: float = 0.0):
        self.env = env
        self._level = float(initial)
        self._last_change = env.now
        self._area = 0.0
        self._start = env.now
        self.peak = float(initial)

    @property
    def level(self) -> float:
        return self._level

    def set(self, value: float) -> None:
        now = self.env.now
        self._area += self._level * (now - self._last_change)
        self._level = float(value)
        self._last_change = now
        if value > self.peak:
            self.peak = float(value)

    def increment(self, delta: float = 1.0) -> None:
        self.set(self._level + delta)

    def decrement(self, delta: float = 1.0) -> None:
        self.set(self._level - delta)

    def average(self, until: Optional[float] = None) -> float:
        """Time-weighted mean level over [start, until]."""
        end = self.env.now if until is None else until
        elapsed = end - self._start
        if elapsed <= 0:
            return self._level
        # Clamp the open interval: an `until` before the last set() must
        # not subtract area that was integrated at the old level.
        area = self._area + self._level * max(0.0, end - self._last_change)
        return area / elapsed


class BusyTracker:
    """Tracks busy time of a worker/CPU for utilization computation.

    A worker calls :meth:`begin` when it starts consuming CPU and
    :meth:`end` when it stops; :meth:`utilization` reports the busy
    fraction over an arbitrary window.
    """

    def __init__(self, env: Environment):
        self.env = env
        self._busy_since: Optional[float] = None
        self._busy_total = 0.0
        self._start = env.now
        # (time, cumulative busy) checkpoints for windowed queries.
        self._checkpoints: List[Tuple[float, float]] = [(env.now, 0.0)]

    @property
    def busy(self) -> bool:
        return self._busy_since is not None

    def begin(self) -> None:
        if self._busy_since is None:
            self._busy_since = self.env.now

    def end(self) -> None:
        if self._busy_since is not None:
            self._busy_total += self.env.now - self._busy_since
            self._busy_since = None

    def busy_time(self) -> float:
        total = self._busy_total
        if self._busy_since is not None:
            total += self.env.now - self._busy_since
        return total

    def checkpoint(self) -> None:
        """Record a (now, cumulative busy) point for later window queries."""
        self._checkpoints.append((self.env.now, self.busy_time()))

    def utilization(self, since: Optional[float] = None) -> float:
        """Busy fraction from ``since`` (default: tracker creation) to now."""
        start = self._start if since is None else since
        elapsed = self.env.now - start
        if elapsed <= 0:
            return 0.0
        if since is None:
            return min(1.0, self.busy_time() / elapsed)
        # Find cumulative busy at `since` from checkpoints (linear interp).
        busy_at_since = self._interpolate(since)
        return min(1.0, (self.busy_time() - busy_at_since) / elapsed)

    def _interpolate(self, when: float) -> float:
        points = self._checkpoints
        if not points or when <= points[0][0]:
            return 0.0
        for (t0, b0), (t1, b1) in zip(points, points[1:]):
            if t0 <= when <= t1:
                if t1 == t0:
                    return b0
                frac = (when - t0) / (t1 - t0)
                return b0 + frac * (b1 - b0)
        # Past the final checkpoint: extrapolate through any in-progress
        # busy interval.  busy_time() - (now - when) is exact when the
        # tracker has been continuously busy over [when, now], and a lower
        # bound (clamped by the last checkpoint) otherwise.
        return max(points[-1][1],
                   self.busy_time() - (self.env.now - when))


class PeriodicSampler:
    """Polls a callable every ``interval`` and stores (time, value) pairs.

    Drives the paper's sampled time series, e.g. per-worker CPU utilization
    and connection counts in Fig. 13.
    """

    def __init__(self, env: Environment, interval: float,
                 probe: Callable[[], float], name: str = ""):
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.env = env
        self.interval = interval
        self.probe = probe
        self.name = name
        self.samples: List[Tuple[float, float]] = []
        self._proc = env.process(self._run(), name=f"sampler:{name}")

    def _run(self):
        from .engine import Interrupt
        try:
            while True:
                yield self.interval  # direct timer
                self.samples.append((self.env.now, float(self.probe())))
        except Interrupt:
            return

    def values(self) -> List[float]:
        return [v for _, v in self.samples]

    def stop(self) -> None:
        if self._proc.is_alive:
            self._proc.interrupt("sampler stopped")
