"""Discrete-event simulation substrate.

The engine (:mod:`repro.sim.engine`) is a SimPy-style coroutine kernel; the
kernel/LB/workload layers are all built as processes on top of it.
"""

from .engine import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from .monitor import BusyTracker, PeriodicSampler, Samples, TimeWeighted
from .rng import RngRegistry, Stream

__all__ = [
    "AllOf",
    "AnyOf",
    "BusyTracker",
    "Environment",
    "Event",
    "Interrupt",
    "PeriodicSampler",
    "Process",
    "RngRegistry",
    "Samples",
    "SimulationError",
    "Stream",
    "TimeWeighted",
    "Timeout",
]
