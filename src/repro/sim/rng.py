"""Reproducible random-number streams.

Every stochastic component of the simulator (arrival processes, service-time
samplers, hash salt, failure injection) draws from its own named stream
derived from a single master seed.  This keeps experiments reproducible and
— crucially for A/B comparisons like Table 3 — lets two notification modes
see *identical* traffic while their internal randomness stays independent.
"""

from __future__ import annotations

import hashlib
import math
import random

__all__ = ["RngRegistry", "Stream"]


class Stream(random.Random):
    """A named random stream; a thin subclass of :class:`random.Random`.

    Adds the handful of distributions the workload models need beyond the
    standard library.
    """

    def __init__(self, seed: int, name: str = ""):
        super().__init__(seed)
        self.name = name

    def poisson(self, lam: float) -> int:
        """Sample a Poisson variate (Knuth for small lam, normal approx above)."""
        if lam < 0:
            raise ValueError(f"lam must be >= 0, got {lam}")
        if lam == 0:
            return 0
        if lam > 50:
            # Normal approximation with continuity correction.
            return max(0, int(self.gauss(lam, math.sqrt(lam)) + 0.5))
        threshold = math.exp(-lam)
        k, product = 0, self.random()
        while product > threshold:
            k += 1
            product *= self.random()
        return k

    def zipf(self, n: int, alpha: float) -> int:
        """Sample a rank in ``1..n`` from a Zipf(alpha) distribution.

        Uses inverse-CDF over cached cumulative harmonic weights; ``n`` is a
        tenant/port count here (at most a few thousand), so the cache is
        cheap and the sampler is O(log n) per draw.
        """
        if n < 1:
            raise ValueError(f"zipf needs n >= 1, got {n}")
        if alpha <= 0:
            return self.randint(1, n)
        cache = getattr(self, "_zipf_cdf", None)
        if cache is None or cache[0] != (n, alpha):
            weights = [1.0 / (rank ** alpha) for rank in range(1, n + 1)]
            total = sum(weights)
            cdf, acc = [], 0.0
            for w in weights:
                acc += w / total
                cdf.append(acc)
            cache = ((n, alpha), cdf)
            self._zipf_cdf = cache
        cdf = cache[1]
        u = self.random()
        lo, hi = 0, n - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cdf[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        return lo + 1

    def bounded_pareto(self, alpha: float, lower: float, upper: float) -> float:
        """Sample from a bounded Pareto distribution on [lower, upper]."""
        if not (0 < lower < upper):
            raise ValueError("need 0 < lower < upper")
        u = self.random()
        la, ha = lower ** alpha, upper ** alpha
        return (-(u * ha - u * la - ha) / (ha * la)) ** (-1.0 / alpha)

    def lognormal_from_quantiles(self, p50: float, p99: float) -> float:
        """Sample a lognormal calibrated so its P50/P99 match the arguments."""
        if p50 <= 0 or p99 <= p50:
            raise ValueError("need 0 < p50 < p99")
        mu = math.log(p50)
        sigma = (math.log(p99) - mu) / 2.3263478740408408  # z_{0.99}
        return self.lognormvariate(mu, sigma)


class RngRegistry:
    """Deterministic factory of named :class:`Stream` objects.

    Streams with the same (master seed, name) are identical across runs and
    independent of the order in which other streams were created.
    """

    def __init__(self, master_seed: int = 0):
        self.master_seed = int(master_seed)
        self._streams: dict[str, Stream] = {}

    def stream(self, name: str) -> Stream:
        """The stream for ``name``, creating it on first use."""
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        digest = hashlib.sha256(
            f"{self.master_seed}:{name}".encode()).digest()
        seed = int.from_bytes(digest[:8], "big")
        stream = Stream(seed, name=name)
        self._streams[name] = stream
        return stream

    def fork(self, suffix: str) -> "RngRegistry":
        """A registry whose streams are all distinct from this one's."""
        digest = hashlib.sha256(
            f"{self.master_seed}/fork/{suffix}".encode()).digest()
        return RngRegistry(int.from_bytes(digest[:8], "big"))
